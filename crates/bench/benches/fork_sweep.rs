//! `bench_fork_sweep`: the copy-on-write forking payoff behind
//! `BENCH_fork.json` — a 16-cell config grid (4 seeds x 4 defense
//! postures) swept twice over the same worker-pool shape:
//!
//! * **fork arm** — build the expensive 236-day prefix once
//!   ([`ShardedEngine::snapshot_after`]), then fork one copy-on-write
//!   continuation per cell ([`mhw_bench::sweep::fork_sweep`]); each
//!   cell pays O(clone + 4 tail days).
//! * **scratch arm** — the control: every cell builds its world from
//!   scratch and simulates all 240 days
//!   ([`mhw_bench::sweep::scratch_sweep`]).
//!
//! The headline number is `speedup = scratch_run_s / (snapshot_s +
//! fork_run_s)`, where the `*_run_s` terms sum each arm's per-cell
//! *production* time (forking/building + simulating) and the
//! snapshot's own cost is charged to the fork arm — the ratio is
//! end-to-end honest about what the fork saves. Consuming a finished
//! cell (digesting the dataset, extracting stats) is identical work in
//! both arms and is timed separately per cell (`digest_s`), so it
//! cannot dilute the quantity being measured; both arms' wall-clock
//! totals including that consumption are recorded too.
//!
//! The grid's baseline cell (the snapshot's own seed and defense
//! posture) must produce the **same dataset digest** in both arms: a
//! fork is an optimization, never a semantic, and `digests_match` in
//! the artifact records that the cross-check held on the recording
//! host.
//!
//! Run with `-- --smoke` (what `scripts/check.sh bench-fork` does) to
//! sweep a miniature grid through both arms — including the baseline
//! digest assertion — without touching the committed `BENCH_fork.json`.

use mhw_bench::sweep::{fork_sweep, scratch_sweep, CellOutcome, SweepCell};
use mhw_core::{DefenseConfig, ScenarioConfig, ShardedEngine, WorldSnapshot};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// One seed for the whole sweep; cells diverge from it mid-run.
const SEED: u64 = 0xF0C0DE;
/// Logical shards — enough that the cross-shard market, contact lures
/// and decoy probes all stay active in every cell.
const SHARDS: u16 = 4;

/// Full-grid scale: the low-activity `scale_world` preset, where
/// wall-clock is dominated by simulating user-days rather than by log
/// volume — the regime a long-prefix sweep lives in. The prefix is
/// 236/240 of the run, so the scratch arm re-simulates those days 16
/// times while the fork arm pays them once.
const USERS: usize = 20_000;
const TOTAL_DAYS: u64 = 240;
const PREFIX_DAYS: u64 = 236;
const DECOYS: usize = 12;

/// One cell of the artifact: both arms' measurements side by side.
#[derive(Serialize)]
struct CellRow {
    label: String,
    seed: String,
    defense: String,
    digest: String,
    incidents: u64,
    exploited: u64,
    /// Fork + tail-day simulation seconds (fork arm).
    fork_run_s: f64,
    /// Build + full-run simulation seconds (scratch arm).
    scratch_run_s: f64,
    /// Dataset digest + stats extraction seconds (same work per arm).
    fork_digest_s: f64,
    scratch_digest_s: f64,
}

/// The whole `BENCH_fork.json` document.
#[derive(Serialize)]
struct ForkBench {
    scenario: String,
    users: usize,
    total_days: u64,
    prefix_days: u64,
    n_shards: u16,
    cells: usize,
    pool_workers: usize,
    host_parallelism: usize,
    /// Building + simulating the shared 236-day prefix, once.
    snapshot_s: f64,
    /// Sum of per-cell fork + tail production times.
    fork_run_s: f64,
    /// Sum of per-cell build + full-run production times.
    scratch_run_s: f64,
    /// Whole-arm wall clock including the per-cell digest/stats
    /// consumption step (identical in both arms).
    fork_arm_wall_s: f64,
    scratch_arm_wall_s: f64,
    /// `scratch_run_s / (snapshot_s + fork_run_s)`; the acceptance
    /// criterion is >= 5x.
    speedup: f64,
    /// Baseline cell digest agreement between the two arms.
    digests_match: bool,
    per_cell: Vec<CellRow>,
}

/// The divergence grid: seeds x defense postures, cell 0 = baseline.
fn grid(base_seed: u64, divergent_seeds: &[u64]) -> Vec<SweepCell> {
    let postures: [(&str, Option<DefenseConfig>); 4] = [
        ("full", None),
        ("none", Some(DefenseConfig::none())),
        ("no_risk", Some(DefenseConfig { login_risk_analysis: false, ..DefenseConfig::default() })),
        ("no_mail", Some(DefenseConfig { mail_classifier: false, ..DefenseConfig::default() })),
    ];
    let mut cells = Vec::new();
    for (si, &seed) in std::iter::once(&base_seed).chain(divergent_seeds).enumerate() {
        for (name, defense) in &postures {
            let mut cell = SweepCell::baseline(format!("seed{si}/{name}"));
            if si > 0 {
                cell = cell.seed(seed);
            }
            if let Some(defense) = *defense {
                cell = cell.defense(defense);
            }
            cells.push(cell);
        }
    }
    cells
}

fn base_config(seed: u64, users: usize, days: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::scale_world(seed, users, days);
    config.market_share = 0.3;
    config
}

/// Assemble a cell's engine exactly as the prefix engine was, with the
/// cell's divergence applied to the base config — the scratch arm's
/// world factory.
fn cell_engine(cell: &SweepCell, seed: u64, users: usize, days: u64) -> ShardedEngine {
    let mut config = base_config(seed, users, days);
    if let Some(seed) = cell.seed {
        config.seed = seed;
    }
    if let Some(defense) = cell.defense {
        config.defense = defense;
    }
    ShardedEngine::new(config, SHARDS).workers(1).decoys(DECOYS, days)
}

struct SweepMeasurement {
    snapshot_s: f64,
    fork_arm_wall_s: f64,
    scratch_arm_wall_s: f64,
    fork_run_s: f64,
    scratch_run_s: f64,
    speedup: f64,
    digests_match: bool,
    forked: Vec<CellOutcome>,
    scratch: Vec<CellOutcome>,
}

/// Run both arms of one grid and cross-check the baseline digest.
fn measure(
    seed: u64,
    users: usize,
    days: u64,
    prefix: u64,
    cells: &[SweepCell],
    pool_workers: usize,
) -> SweepMeasurement {
    eprintln!(
        "fork sweep: building the {prefix}-day prefix once ({users} users, {SHARDS} shards)..."
    );
    let t0 = Instant::now();
    let snapshot: WorldSnapshot = ShardedEngine::new(base_config(seed, users, days), SHARDS)
        .workers(1)
        .decoys(DECOYS, days)
        .snapshot_after(prefix)
        .expect("prefix snapshot");
    let snapshot_s = t0.elapsed().as_secs_f64();
    eprintln!("  prefix ready in {snapshot_s:.2}s; forking {} continuations...", cells.len());

    let t0 = Instant::now();
    let forked = fork_sweep(&snapshot, cells, pool_workers).expect("fork sweep");
    let fork_arm_wall_s = t0.elapsed().as_secs_f64();
    let fork_run_s: f64 = forked.iter().map(|c| c.run_s).sum();
    eprintln!("  fork arm done in {fork_arm_wall_s:.2}s; running the scratch arm...");

    let t0 = Instant::now();
    let scratch = scratch_sweep(
        &|cell| cell_engine(cell, seed, users, days),
        seed,
        cells,
        pool_workers,
    )
    .expect("scratch sweep");
    let scratch_arm_wall_s = t0.elapsed().as_secs_f64();
    let scratch_run_s: f64 = scratch.iter().map(|c| c.run_s).sum();

    let digests_match = forked[0].digest == scratch[0].digest;
    assert!(
        digests_match,
        "baseline fork digest {:016x} != from-scratch digest {:016x} — \
         the fork changed semantics",
        forked[0].digest, scratch[0].digest
    );
    let speedup = scratch_run_s / (snapshot_s + fork_run_s).max(f64::MIN_POSITIVE);
    eprintln!(
        "  scratch {scratch_run_s:.2}s vs fork {:.2}s production => {speedup:.1}x; \
         baseline digests match",
        snapshot_s + fork_run_s
    );
    SweepMeasurement {
        snapshot_s,
        fork_arm_wall_s,
        scratch_arm_wall_s,
        fork_run_s,
        scratch_run_s,
        speedup,
        digests_match,
        forked,
        scratch,
    }
}

fn main() {
    let pool_workers = mhw_core::default_workers();
    if std::env::args().any(|a| a == "--smoke") {
        // check.sh gate: a miniature 4-cell grid through both arms,
        // including the baseline digest cross-check. No artifact.
        let cells = grid(0xBEEF, &[0xD1CE]);
        let cells = &cells[..4];
        let m = measure(0xBEEF, 2_000, 12, 9, cells, pool_workers);
        assert!(
            m.forked.iter().skip(1).all(|c| c.digest != m.forked[0].digest),
            "divergent smoke cells reproduced the baseline digest"
        );
        println!(
            "smoke sweep ok: {} cells, baseline digest {:016x}, fork {:.2}s, scratch {:.2}s",
            cells.len(),
            m.forked[0].digest,
            m.snapshot_s + m.fork_run_s,
            m.scratch_run_s
        );
        return;
    }

    let cells = grid(SEED, &[0xA11CE, 0xB0B5, 0xCAB1E]);
    let m = measure(SEED, USERS, TOTAL_DAYS, PREFIX_DAYS, &cells, pool_workers);
    assert!(
        m.speedup >= 5.0,
        "fork sweep speedup {:.2}x below the 5x acceptance criterion",
        m.speedup
    );
    let per_cell = cells
        .iter()
        .zip(m.forked.iter().zip(&m.scratch))
        .map(|(cell, (fork, scratch))| CellRow {
            label: cell.label.clone(),
            seed: format!("{:x}", fork.seed),
            defense: cell.label.split('/').nth(1).unwrap_or("full").to_string(),
            digest: format!("{:016x}", fork.digest),
            incidents: fork.incidents,
            exploited: fork.exploited,
            fork_run_s: fork.run_s,
            scratch_run_s: scratch.run_s,
            fork_digest_s: fork.digest_s,
            scratch_digest_s: scratch.digest_s,
        })
        .collect();
    let doc = ForkBench {
        scenario: format!(
            "fork sweep: scale_world preset, {USERS} users x {TOTAL_DAYS} days, \
             {SHARDS} shards, market_share 0.3, seed {SEED:#x}, snapshot after day {PREFIX_DAYS}"
        ),
        users: USERS,
        total_days: TOTAL_DAYS,
        prefix_days: PREFIX_DAYS,
        n_shards: SHARDS,
        cells: cells.len(),
        pool_workers,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        snapshot_s: m.snapshot_s,
        fork_run_s: m.fork_run_s,
        scratch_run_s: m.scratch_run_s,
        fork_arm_wall_s: m.fork_arm_wall_s,
        scratch_arm_wall_s: m.scratch_arm_wall_s,
        speedup: m.speedup,
        digests_match: m.digests_match,
        per_cell,
    };
    let json = serde_json::to_string(&doc).expect("serialize BENCH_fork.json");
    let path: PathBuf = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fork.json").into();
    std::fs::write(&path, json).expect("write BENCH_fork.json");
    println!("wrote {} ({:.1}x speedup over {} cells)", path.display(), doc.speedup, doc.cells);
}
