//! Criterion benches: one target per paper table/figure (the cost of
//! regenerating each artifact from the logs) plus the simulation-kernel
//! and ablation benches DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mhw_analysis::{Breakdown, Ecdf, HourlySeries};
use mhw_bench::{bench_forms, bench_world};
use mhw_core::datasets::{
    hijacker_logins, hijacker_phones, hijacker_search_queries, reported_messages,
};
use mhw_core::DatasetInventory;
use mhw_experiments::{all_experiments, Context, Scale};
use std::sync::OnceLock;

fn quick_context() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(|| Context::new(Scale::Quick, 0xBE9C))
}

/// Table 1: dataset inventory extraction.
fn bench_table1(c: &mut Criterion) {
    let eco = bench_world();
    c.bench_function("table1_dataset_inventory", |b| {
        b.iter(|| DatasetInventory::from_run(eco, 100, 200, 600))
    });
}

/// Table 2: reported-corpus curation is covered by the experiment run
/// below; here we bench the raw report extraction.
fn bench_table2(c: &mut Criterion) {
    let eco = bench_world();
    c.bench_function("table2_reported_messages", |b| b.iter(|| reported_messages(eco)));
}

/// Table 3: hijacker search-term extraction + tabulation.
fn bench_table3(c: &mut Criterion) {
    let eco = bench_world();
    c.bench_function("table3_search_terms", |b| {
        b.iter(|| {
            let queries = hijacker_search_queries(eco);
            let mut breakdown = Breakdown::new();
            for q in queries {
                breakdown.add(q);
            }
            breakdown.top(10)
        })
    });
}

/// Figure 3: referrer breakdown over page HTTP logs.
fn bench_fig3(c: &mut Criterion) {
    let forms = bench_forms();
    c.bench_function("fig3_referrer_breakdown", |b| {
        b.iter(|| {
            let mut blank = 0u64;
            let mut nonblank = Breakdown::new();
            for p in &forms.pages {
                for r in &p.http_log {
                    match r.referrer {
                        mhw_netmodel::referrer::Referrer::Blank => blank += 1,
                        mhw_netmodel::referrer::Referrer::From(w) => nonblank.add(w.label()),
                    }
                }
            }
            (blank, nonblank.rows().len())
        })
    });
}

/// Figure 4: TLD breakdown of phished addresses.
fn bench_fig4(c: &mut Criterion) {
    let forms = bench_forms();
    c.bench_function("fig4_tld_breakdown", |b| {
        b.iter(|| {
            let mut tlds = Breakdown::new();
            for subs in &forms.submissions {
                for s in subs {
                    tlds.add(s.victim.address.tld().to_string());
                }
            }
            tlds.fraction_of("edu")
        })
    });
}

/// Figure 5: per-page conversion ECDF.
fn bench_fig5(c: &mut Criterion) {
    let forms = bench_forms();
    c.bench_function("fig5_conversion_ecdf", |b| {
        b.iter(|| {
            let rates: Vec<f64> =
                forms.pages.iter().filter_map(|p| p.success_rate()).collect();
            Ecdf::new(rates).mean()
        })
    });
}

/// Figure 6: hourly submission series construction.
fn bench_fig6(c: &mut Criterion) {
    let forms = bench_forms();
    c.bench_function("fig6_hourly_series", |b| {
        b.iter(|| {
            let series: Vec<HourlySeries> = forms
                .pages
                .iter()
                .map(|p| HourlySeries::from_counts(p.hourly_submissions()))
                .collect();
            HourlySeries::average(&series)
        })
    });
}

/// Figure 7: the decoy experiment end to end (small).
fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_decoy_experiment");
    group.sample_size(10);
    group.bench_function("run", |b| {
        b.iter_batched(
            || {
                mhw_core::ScenarioBuilder::small_test(0xF17)
                    .days(6)
                    .population(200)
                    .into_config()
            },
            |config| mhw_core::run_decoy_experiment(config, 20, 3),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// Figure 8: per-IP discipline measurement over the login log.
fn bench_fig8(c: &mut Criterion) {
    let eco = bench_world();
    c.bench_function("fig8_per_ip_accounts", |b| {
        b.iter(|| {
            let mut max = 0usize;
            for r in hijacker_logins(eco) {
                let n = eco
                    .login_log
                    .distinct_accounts_from_ip_on_day(r.ip, r.at.day_index());
                max = max.max(n);
            }
            max
        })
    });
}

/// Figures 9 & 10: recovery latency ECDF + per-method success.
fn bench_fig9_fig10(c: &mut Criterion) {
    let eco = bench_world();
    c.bench_function("fig9_recovery_latency_ecdf", |b| {
        b.iter(|| {
            let latencies: Vec<f64> = eco
                .real_incidents()
                .filter_map(|i| Some(i.recovered_at?.since(i.flagged_at?).as_hours_f64()))
                .collect();
            if latencies.is_empty() {
                0.0
            } else {
                Ecdf::new(latencies).fraction_at_or_below(13.0)
            }
        })
    });
    c.bench_function("fig10_method_success", |b| {
        b.iter(|| eco.recovery.success_rate_by_method())
    });
}

/// Figures 11 & 12: attribution breakdowns.
fn bench_fig11_fig12(c: &mut Criterion) {
    let eco = bench_world();
    c.bench_function("fig11_ip_geolocation", |b| {
        b.iter(|| {
            let mut countries = Breakdown::new();
            for r in hijacker_logins(eco) {
                if let Some(code) = eco.geo.locate(r.ip) {
                    countries.add(code.code().to_string());
                }
            }
            countries.rows().len()
        })
    });
    c.bench_function("fig12_phone_attribution", |b| {
        b.iter(|| {
            let mut countries = Breakdown::new();
            for p in hijacker_phones(eco) {
                if let Some(code) = p.country() {
                    countries.add(code.code().to_string());
                }
            }
            countries.rows().len()
        })
    });
}

/// The simulation kernel itself: one full simulated day.
fn bench_simulation_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_kernel");
    group.sample_size(10);
    group.bench_function("one_simulated_day_400_users", |b| {
        b.iter_batched(
            || mhw_core::ScenarioBuilder::small_test(0xDA7).days(1).build(),
            |mut eco| {
                eco.run_day(0);
                eco
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

/// Ablation benches: risk scoring and classification throughput — the
/// per-login / per-message costs a provider would actually pay.
fn bench_defense_kernels(c: &mut Criterion) {
    use mhw_defense::{classify_mail, LoginSignals, RiskEngine, RiskWeights};
    let engine = RiskEngine::default();
    let ablated = RiskEngine {
        weights: RiskWeights::default().without("ip_fanout"),
        ..RiskEngine::default()
    };
    let signals = LoginSignals {
        new_country: 1.0,
        impossible_travel: 0.0,
        new_device: 1.0,
        ip_fanout: 0.4,
        odd_hour: 0.0,
        failure_burst: 0.2,
    };
    c.bench_function("risk_score_full", |b| b.iter(|| engine.evaluate(&signals)));
    c.bench_function("risk_score_ablated_fanout", |b| b.iter(|| ablated.evaluate(&signals)));

    let eco = bench_world();
    let messages: Vec<_> = eco
        .provider
        .mailbox(mhw_types::AccountId(0))
        .all_messages()
        .cloned()
        .collect();
    c.bench_function("scam_classifier_per_mailbox", |b| {
        b.iter(|| messages.iter().filter(|m| classify_mail(m) != mhw_defense::MailClass::Clean).count())
    });
}

/// The full quick experiment battery (the repro binary's workload).
fn bench_full_battery(c: &mut Criterion) {
    let ctx = quick_context();
    let mut group = c.benchmark_group("experiment_battery");
    group.sample_size(10);
    for (name, runner) in all_experiments() {
        // Skip the two experiments that build their own worlds per call —
        // they are benchmarked implicitly via fig7/simulation_kernel.
        if name.contains("§5 —") || name.contains("§8") || name.contains("taxonomy") {
            continue;
        }
        group.bench_function(name, |b| b.iter(|| runner(ctx)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9_fig10,
    bench_fig11_fig12,
    bench_simulation_day,
    bench_defense_kernels,
    bench_full_battery
);
criterion_main!(benches);
