//! `bench_scale_ladder`: the population scaling ladder behind
//! `BENCH_scale.json` — the same sharded engine at 10k, 100k and 1M
//! users, reporting simulated user-days per wall-clock second, peak
//! RSS, and the `shard_day` speedup across worker counts.
//!
//! Each rung runs in a **re-executed child process** (`--rung` mode):
//! peak RSS is read from `/proc/self/status` `VmHWM`, which is a
//! high-water mark for the whole process, so rungs must not share an
//! address space or the 1M rung would inflate every smaller one. The
//! parent collects one JSON row per child from stdout and writes the
//! assembled ladder to `BENCH_scale.json` at the workspace root.
//!
//! Worker counts are mechanics, never semantics: within a rung the
//! parent asserts every worker count produced the identical dataset
//! digest (the same invariant `tests/sharding.rs` pins at unit scale).
//! Speedup numbers are only meaningful on a host with that many
//! hardware threads — the document records `host_parallelism` so a
//! 1-core CI box reporting ~1.0x is read as "no cores", not "no
//! scaling".
//!
//! The endurance rung (1M users x 180 days) also spills the merged
//! logs to disk through [`mhw_types::LogStore::spill`] and reports the
//! spilled volume and FNV digest, exercising the bounded-RSS path a
//! million-user world needs.
//!
//! Run with `-- --smoke` (what `scripts/check.sh bench-scale` does) to
//! execute a miniature rung through the same child-process machinery —
//! including the cross-worker digest assertion — without touching the
//! committed `BENCH_scale.json`.

use mhw_core::{ScenarioConfig, ShardedEngine};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Logical shards per rung: enough to keep 16 workers busy, few enough
/// that per-shard fixed costs stay invisible at 10k users.
const SHARDS: u16 = 8;
/// One seed for the whole ladder; rungs differ by size, not by world.
const SEED: u64 = 0x5CA7E;

/// One rung of `BENCH_scale.json`: a single (users, days, workers) run.
#[derive(Serialize, Deserialize)]
struct ScaleRow {
    users: usize,
    days: u64,
    workers: usize,
    build_s: f64,
    elapsed_s: f64,
    /// Simulated user-days per wall-clock second, the ladder's
    /// throughput unit (1M users x 180 days = 180M user-days).
    user_days_per_sec: f64,
    shard_day_ms: f64,
    /// `shard_day` at 1 worker divided by this row's; `null` for rungs
    /// that only ran one worker count.
    speedup: Option<f64>,
    /// Whether the speedup column means anything on the recording host:
    /// `false` when the row ran more workers than the host has hardware
    /// threads (`host_parallelism < workers`), where ~1.0x reads as "no
    /// cores", not "no scaling". `null` when `speedup` is `null`.
    /// Filled in by the parent; child rows emit it as `null`.
    speedup_valid: Option<bool>,
    /// `VmHWM` of the rung's dedicated process, in MiB.
    peak_rss_mib: f64,
    digest: String,
    /// Merged logs spilled to disk (endurance rung only): MiB written.
    spilled_mib: Option<f64>,
    /// FNV-1a digest over the spilled bytes (endurance rung only).
    spill_digest: Option<String>,
}

/// The whole `BENCH_scale.json` document.
#[derive(Serialize)]
struct ScaleBench {
    scenario: String,
    /// `std::thread::available_parallelism` on the recording host —
    /// the ceiling on every speedup column below.
    host_parallelism: usize,
    rungs: Vec<ScaleRow>,
}

fn peak_rss_mib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Child mode: run one (users, days, workers) rung in this process and
/// print its row as the last stdout line.
fn run_rung(users: usize, days: u64, workers: usize, spill: bool) {
    let config = ScenarioConfig::scale_world(SEED, users, days);
    let t0 = Instant::now();
    let engine = ShardedEngine::new(config, SHARDS).workers(workers).contact_spillover(0.25);
    let run = engine.run().expect("scale rung run");
    let elapsed = t0.elapsed().as_secs_f64();
    let profile = run.profile();
    let phase = |name: &str| {
        profile.phases.iter().find(|p| p.phase == name).map_or(0.0, |p| p.total_ms)
    };
    let (spilled_mib, spill_digest) = if spill {
        let dir = std::env::temp_dir().join(format!("mhw-scale-spill-{users}-{workers}"));
        let files = run.spill_logs(&dir).expect("spill merged logs");
        let bytes: u64 = files.iter().map(|f| f.bytes).sum();
        let mut digest = 0u64;
        for f in &files {
            digest ^= f.digest;
        }
        let _ = std::fs::remove_dir_all(&dir);
        (Some(bytes as f64 / (1024.0 * 1024.0)), Some(format!("{digest:016x}")))
    } else {
        (None, None)
    };
    let row = ScaleRow {
        users,
        days,
        workers,
        build_s: phase("build") / 1e3,
        elapsed_s: elapsed,
        user_days_per_sec: (users as f64 * days as f64) / elapsed.max(f64::MIN_POSITIVE),
        shard_day_ms: phase("shard_day"),
        speedup: None, // filled in by the parent against the rung's baseline
        speedup_valid: None,
        peak_rss_mib: peak_rss_mib(),
        digest: format!("{:016x}", run.dataset_digest()),
        spilled_mib,
        spill_digest,
    };
    println!("SCALE_ROW {}", serde_json::to_string(&row).expect("serialize row"));
}

/// Parent side: re-execute ourselves for one rung and parse its row.
fn spawn_rung(users: usize, days: u64, workers: usize, spill: bool) -> ScaleRow {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--rung".to_string(),
            users.to_string(),
            days.to_string(),
            workers.to_string(),
            u8::from(spill).to_string(),
        ])
        .output()
        .expect("spawn rung child");
    assert!(
        out.status.success(),
        "rung {users}x{days}d @{workers}w failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("SCALE_ROW "))
        .expect("child printed no SCALE_ROW line");
    serde_json::from_str(line).expect("parse child row")
}

/// Run one population size across `worker_counts`, fill in speedups
/// against the first count, and assert digest equality across counts.
fn run_ladder_rung(users: usize, days: u64, worker_counts: &[usize], spill: bool) -> Vec<ScaleRow> {
    let mut rows: Vec<ScaleRow> = Vec::new();
    for &workers in worker_counts {
        eprintln!("scale rung: {users} users x {days} days @ {workers} workers...");
        let row = spawn_rung(users, days, workers, spill);
        eprintln!(
            "  {:.0} user-days/s, shard_day {:.0} ms, peak RSS {:.0} MiB, digest {}",
            row.user_days_per_sec, row.shard_day_ms, row.peak_rss_mib, row.digest
        );
        rows.push(row);
    }
    let baseline = rows[0].shard_day_ms;
    let base_digest = rows[0].digest.clone();
    let sweep = rows.len() > 1;
    for row in &mut rows {
        assert_eq!(
            row.digest, base_digest,
            "dataset digest changed with worker count at {users} users — \
             workers leaked into semantics"
        );
        // A single-count rung (the endurance run) keeps speedup = null.
        if sweep {
            row.speedup = Some(baseline / row.shard_day_ms.max(f64::MIN_POSITIVE));
        }
    }
    rows
}

fn write_scale_bench(mut rungs: Vec<ScaleRow>, scenario: &str) {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    for row in &mut rungs {
        // A speedup measured with more workers than hardware threads is
        // oversubscription noise, not scaling — flag it so readers (and
        // the figure atlas) can grey the cell out.
        row.speedup_valid = row.speedup.map(|_| row.workers <= host_parallelism);
    }
    let doc = ScaleBench {
        scenario: scenario.to_string(),
        host_parallelism,
        rungs,
    };
    let json = serde_json::to_string(&doc).expect("serialize BENCH_scale.json");
    let path: PathBuf = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json").into();
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--rung") {
        let users: usize = args[i + 1].parse().expect("users");
        let days: u64 = args[i + 2].parse().expect("days");
        let workers: usize = args[i + 3].parse().expect("workers");
        let spill: u8 = args[i + 4].parse().expect("spill flag");
        run_rung(users, days, workers, spill != 0);
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        // check.sh gate: a miniature rung through the full child-process
        // machinery (including the cross-worker digest assertion), no
        // artifact written.
        let rows = run_ladder_rung(2_000, 2, &[1, 4], false);
        for row in &rows {
            println!(
                "smoke rung ok: {} users @ {} workers, {:.0} user-days/s, digest {}",
                row.users, row.workers, row.user_days_per_sec, row.digest
            );
        }
        return;
    }
    let mut rungs = Vec::new();
    rungs.extend(run_ladder_rung(10_000, 30, &[1, 4, 8, 16], false));
    rungs.extend(run_ladder_rung(100_000, 30, &[1, 4, 8, 16], false));
    // The endurance rung: a million users for the paper's full
    // 180-day observation window, with the merged logs spilled to
    // disk. One worker count — the point is completion and RSS, and
    // digest stability across workers is already pinned above.
    rungs.extend(run_ladder_rung(1_000_000, 180, &[8], true));
    write_scale_bench(
        rungs,
        "scale ladder: 8 shards, low-activity scale_world preset, seed 0x5CA7E",
    );
}
