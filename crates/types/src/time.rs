//! Simulated time.
//!
//! The whole workspace runs on a single notion of time: [`SimTime`], an
//! absolute number of seconds since the *simulation epoch*, which is
//! defined as **Monday, 2012-01-02 00:00:00 UTC**. Using a Monday epoch
//! makes weekday arithmetic a simple modulo, which matters because the
//! paper's hijacker crews keep office hours and are "largely inactive over
//! the weekends" (§5.5).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One minute, in seconds.
pub const MINUTE: u64 = 60;
/// One hour, in seconds.
pub const HOUR: u64 = 60 * MINUTE;
/// One day, in seconds.
pub const DAY: u64 = 24 * HOUR;
/// One (7-day) week, in seconds.
pub const WEEK: u64 = 7 * DAY;

/// A span of simulated time, in whole seconds.
///
/// Sub-second precision is never needed by the paper's measurements (the
/// finest-grained figure is minutes), so seconds keep every computation in
/// exact integer arithmetic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }
    /// A duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MINUTE)
    }
    /// A duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * HOUR)
    }
    /// A duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * DAY)
    }

    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }
    /// Fractional minutes (for reporting, e.g. the 3-minute profiling mean).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MINUTE as f64
    }
    /// Fractional hours (for reporting, e.g. recovery-latency ECDFs).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Saturating multiplication by a scalar.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s < MINUTE {
            write!(f, "{s}s")
        } else if s < HOUR {
            write!(f, "{}m{:02}s", s / MINUTE, s % MINUTE)
        } else if s < DAY {
            write!(f, "{}h{:02}m", s / HOUR, (s % HOUR) / MINUTE)
        } else {
            write!(f, "{}d{:02}h", s / DAY, (s % DAY) / HOUR)
        }
    }
}

/// Days of the week. The simulation epoch is a Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays in order, starting from Monday (the epoch weekday).
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Whether this is a Saturday or Sunday. Hijacker crews in the paper
    /// were "largely inactive over the weekends".
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// An absolute instant of simulated time: seconds since the epoch
/// (Monday 2012-01-02 00:00:00 UTC).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (Monday 00:00 UTC).
    pub const EPOCH: SimTime = SimTime(0);

    /// The instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }
    /// Seconds elapsed since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`; saturates to zero if `earlier` is in
    /// the future (callers comparing log records should never rely on
    /// negative spans).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Day index since the epoch (day 0 is the epoch Monday).
    pub const fn day_index(self) -> u64 {
        self.0 / DAY
    }

    /// Seconds into the current UTC day.
    pub const fn seconds_into_day(self) -> u64 {
        self.0 % DAY
    }

    /// UTC hour of day, 0..24.
    pub const fn hour_of_day(self) -> u32 {
        (self.seconds_into_day() / HOUR) as u32
    }

    /// Weekday in UTC.
    pub fn weekday(self) -> Weekday {
        Weekday::ALL[(self.day_index() % 7) as usize]
    }

    /// Local hour of day for a timezone expressed as a whole-hour UTC
    /// offset (may be negative, e.g. Venezuela at −4).
    pub fn local_hour(self, utc_offset_hours: i32) -> u32 {
        let h = self.hour_of_day() as i32 + utc_offset_hours;
        h.rem_euclid(24) as u32
    }

    /// Local weekday for a whole-hour UTC offset.
    pub fn local_weekday(self, utc_offset_hours: i32) -> Weekday {
        let total_hours = self.0 as i64 / HOUR as i64 + utc_offset_hours as i64;
        let day = (total_hours.div_euclid(24)).rem_euclid(7) as usize;
        Weekday::ALL[day]
    }

    /// Start of the current UTC day.
    pub const fn start_of_day(self) -> SimTime {
        SimTime(self.0 - self.0 % DAY)
    }

    /// The instant `d` later.
    pub const fn plus(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day_index(),
            self.hour_of_day(),
            (self.0 % HOUR) / MINUTE,
            self.0 % MINUTE
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday() {
        assert_eq!(SimTime::EPOCH.weekday(), Weekday::Monday);
        assert!(!SimTime::EPOCH.weekday().is_weekend());
    }

    #[test]
    fn weekday_cycles() {
        for (i, wd) in Weekday::ALL.iter().enumerate() {
            let t = SimTime::from_secs(i as u64 * DAY + 5 * HOUR);
            assert_eq!(t.weekday(), *wd);
        }
        // Day 7 wraps back to Monday.
        assert_eq!(SimTime::from_secs(7 * DAY).weekday(), Weekday::Monday);
    }

    #[test]
    fn weekend_detection() {
        assert!(SimTime::from_secs(5 * DAY).weekday().is_weekend()); // Saturday
        assert!(SimTime::from_secs(6 * DAY).weekday().is_weekend()); // Sunday
        assert!(!SimTime::from_secs(4 * DAY).weekday().is_weekend()); // Friday
    }

    #[test]
    fn local_hour_positive_offset() {
        // 23:00 UTC at UTC+8 (China) is 07:00 next day.
        let t = SimTime::from_secs(23 * HOUR);
        assert_eq!(t.local_hour(8), 7);
    }

    #[test]
    fn local_hour_negative_offset() {
        // 02:00 UTC at UTC-4 (Venezuela) is 22:00 the previous day.
        let t = SimTime::from_secs(2 * HOUR);
        assert_eq!(t.local_hour(-4), 22);
    }

    #[test]
    fn local_weekday_crosses_midnight() {
        // Epoch Monday 23:00 UTC at UTC+8 is already Tuesday locally.
        let t = SimTime::from_secs(23 * HOUR);
        assert_eq!(t.local_weekday(8), Weekday::Tuesday);
        // Epoch Monday 02:00 UTC at UTC-4 is still Sunday locally.
        let t2 = SimTime::from_secs(2 * HOUR);
        assert_eq!(t2.local_weekday(-4), Weekday::Sunday);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(200);
        assert_eq!(b.since(a), SimDuration::from_secs(100));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_display_forms() {
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
        assert_eq!(SimDuration::from_secs(62).to_string(), "1m02s");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3h00m");
        assert_eq!(SimDuration::from_days(2).to_string(), "2d00h");
    }

    #[test]
    fn duration_unit_conversions() {
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert!((SimDuration::from_secs(90).as_mins_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_secs(HOUR / 2).as_hours_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn start_of_day_floors() {
        let t = SimTime::from_secs(3 * DAY + 7 * HOUR + 123);
        assert_eq!(t.start_of_day(), SimTime::from_secs(3 * DAY));
        assert_eq!(t.day_index(), 3);
    }

    #[test]
    fn time_display() {
        let t = SimTime::from_secs(DAY + 2 * HOUR + 3 * MINUTE + 4);
        assert_eq!(t.to_string(), "d1+02:03:04");
    }
}
