//! Bounded-backoff retry for transient I/O.
//!
//! The checkpoint writer (PR 4) retried failed writes inline with a
//! doubling millisecond backoff; this module lifts that loop into a
//! reusable [`RetryPolicy`] so every artifact writer in the workspace
//! (checkpoints, snapshot fork-point records, serve's `--out` /
//! `--log-out` reports) survives transient I/O errors the same way.
//!
//! Retrying is pure *mechanics*: it sleeps wall clock between attempts
//! but never touches simulation state, so a run that needed a retry is
//! still byte-identical to one that did not.

use std::thread;
use std::time::Duration;

/// A bounded retry schedule: up to `attempts` tries, sleeping a
/// doubling backoff between them (`base_delay`, then 2×, 4×, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be ≥ 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles after each failure.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    /// The checkpoint writer's historical schedule: 3 attempts with
    /// 4 ms then 8 ms between them.
    fn default() -> Self {
        RetryPolicy { attempts: 3, base_delay: Duration::from_millis(4) }
    }
}

impl RetryPolicy {
    /// Run `op` until it succeeds or the attempt budget is spent,
    /// returning the last error if every attempt fails.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        self.run_with(&mut op, |_| {})
    }

    /// Like [`RetryPolicy::run`], but calls `on_retry(next_attempt)`
    /// before each backoff sleep — the hook the engine uses to count
    /// retries in its ops registry.
    pub fn run_with<T, E>(
        &self,
        op: &mut impl FnMut() -> Result<T, E>,
        mut on_retry: impl FnMut(u32),
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut delay = self.base_delay;
        let mut attempt = 0;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(err) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(err);
                    }
                    on_retry(attempt);
                    thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retrying_when_op_succeeds() {
        let mut calls = 0;
        let out: Result<i32, ()> = RetryPolicy::default().run(|| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_transient_failures_up_to_the_budget() {
        let policy = RetryPolicy { attempts: 3, base_delay: Duration::ZERO };
        let mut calls = 0;
        let mut retries = Vec::new();
        let out = policy.run_with(
            &mut || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(calls)
                }
            },
            |attempt| retries.push(attempt),
        );
        assert_eq!(out, Ok(3));
        assert_eq!(retries, vec![1, 2]);
    }

    #[test]
    fn returns_the_last_error_when_the_budget_is_spent() {
        let policy = RetryPolicy { attempts: 2, base_delay: Duration::ZERO };
        let mut calls = 0;
        let out: Result<(), String> = policy.run(|| {
            calls += 1;
            Err(format!("attempt {calls}"))
        });
        assert_eq!(out, Err("attempt 2".to_string()));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let policy = RetryPolicy { attempts: 0, base_delay: Duration::ZERO };
        let out: Result<i32, ()> = policy.run(|| Ok(1));
        assert_eq!(out, Ok(1));
    }
}
