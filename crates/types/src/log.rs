//! The unified event-log API.
//!
//! Every subsystem that records history — the identity stack's login
//! log, the mail provider's activity log, the defense notification log —
//! writes through the same two pieces:
//!
//! * [`LogStore<T>`]: an append-only log *segment* whose entries are
//!   stamped with a globally orderable [`LogKey`] `(at, shard, seq)`.
//!   A single-threaded scenario owns one segment per log (shard 0); the
//!   sharded engine gives every logical shard its own segment and merges
//!   them afterwards.
//! * [`EventSink<T>`]: the write interface, so code that only needs to
//!   emit records (world adapters, defense hooks) does not care which
//!   segment it is writing into.
//!
//! The key design constraint is determinism: `seq` is allocated densely
//! per shard in append order, so a segment's contents are a pure
//! function of the events that shard processed — independent of how
//! many worker threads drove the run. [`LogStore::merge`] then produces
//! one globally ordered view, sorted by `(at, shard, seq)`; since every
//! key is unique the merged order is total and reproducible, which is
//! what makes whole-dataset digests byte-identical across worker
//! counts.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::ops::Deref;

/// Identifier of the logical shard a record was produced on.
///
/// Shard assignment is part of scenario *semantics* (like the seed):
/// records keep their shard id through merging, and a scenario's shard
/// count changes its event interleaving just as a different seed would.
/// Worker-thread count, by contrast, must never influence log contents.
pub type ShardId = u16;

/// Globally unique, totally ordered key carried by every log record.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LogKey {
    /// Simulated instant the record was emitted.
    pub at: SimTime,
    /// Logical shard that produced the record.
    pub shard: ShardId,
    /// Dense per-shard append counter; breaks ties among same-instant
    /// records on one shard while preserving their emission order.
    pub seq: u64,
}

/// A log record together with its ordering key.
///
/// Derefs to the record so existing call sites (`r.at`, `r.actor`,
/// `matches!(e.kind, ..)`) keep working unchanged on stamped entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The global ordering key: `(SimTime, shard, seq)`.
    pub key: LogKey,
    /// The domain record itself.
    pub record: T,
}

impl<T> Deref for Stamped<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.record
    }
}

impl<T> AsRef<T> for Stamped<T> {
    fn as_ref(&self) -> &T {
        &self.record
    }
}

/// Write interface shared by every log producer.
pub trait EventSink<T> {
    /// Append `record` as happening at `at`, returning the key it was
    /// stamped with.
    fn emit(&mut self, at: SimTime, record: T) -> LogKey;
}

/// An append-only log segment.
///
/// Entries arrive in emission order, which is *approximately* — not
/// exactly — time order (concurrent sessions interleave, exactly like
/// real log ingestion). Queries must therefore not assume the segment
/// is time-sorted; [`LogStore::merge`] sorts by key when a globally
/// ordered view is needed.
#[derive(Debug, Clone)]
pub struct LogStore<T> {
    shard: ShardId,
    entries: Vec<Stamped<T>>,
}

impl<T> Default for LogStore<T> {
    fn default() -> Self {
        LogStore::new()
    }
}

impl<T> LogStore<T> {
    /// A shard-0 segment (single-threaded scenarios).
    pub fn new() -> Self {
        Self::for_shard(0)
    }

    /// A segment owned by logical shard `shard`.
    pub fn for_shard(shard: ShardId) -> Self {
        LogStore {
            shard,
            entries: Vec::new(),
        }
    }

    /// The logical shard this segment belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Append in emission order, stamping the next dense sequence
    /// number for this shard.
    pub fn append(&mut self, at: SimTime, record: T) -> LogKey {
        let key = LogKey {
            at,
            shard: self.shard,
            seq: self.entries.len() as u64,
        };
        self.entries.push(Stamped { key, record });
        key
    }

    /// All entries in emission order.
    pub fn entries(&self) -> &[Stamped<T>] {
        &self.entries
    }

    /// The records alone, in emission order.
    pub fn records(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|e| &e.record)
    }

    /// Iterator over the stamped entries in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Stamped<T>> {
        self.entries.iter()
    }

    /// Number of records in this segment.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recently emitted entry, if any.
    pub fn last(&self) -> Option<&Stamped<T>> {
        self.entries.last()
    }

    /// Merge per-shard segments into one globally ordered view, sorted
    /// by `(at, shard, seq)`. Keys are unique, so the result is a total
    /// order independent of the segment iteration order.
    pub fn merge<'a>(segments: impl IntoIterator<Item = &'a LogStore<T>>) -> Vec<&'a Stamped<T>>
    where
        T: 'a,
    {
        let mut all: Vec<&'a Stamped<T>> =
            segments.into_iter().flat_map(|s| s.entries.iter()).collect();
        all.sort_by_key(|e| e.key);
        all
    }

    /// Consuming variant of [`LogStore::merge`], for assembling the
    /// final global log out of finished shard segments.
    pub fn merge_owned(segments: impl IntoIterator<Item = LogStore<T>>) -> Vec<Stamped<T>> {
        let mut all: Vec<Stamped<T>> = segments
            .into_iter()
            .flat_map(|s| s.entries.into_iter())
            .collect();
        all.sort_by_key(|e| e.key);
        all
    }
}

impl<T> EventSink<T> for LogStore<T> {
    fn emit(&mut self, at: SimTime, record: T) -> LogKey {
        self.append(at, record)
    }
}

impl<'a, T> IntoIterator for &'a LogStore<T> {
    type Item = &'a Stamped<T>;
    type IntoIter = std::slice::Iter<'a, Stamped<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_dense_and_ordered_per_shard() {
        let mut log = LogStore::for_shard(3);
        let k0 = log.append(SimTime::from_secs(10), "a");
        let k1 = log.append(SimTime::from_secs(10), "b");
        let k2 = log.append(SimTime::from_secs(5), "c"); // out-of-order arrival
        assert_eq!((k0.shard, k0.seq), (3, 0));
        assert_eq!((k1.shard, k1.seq), (3, 1));
        assert_eq!((k2.shard, k2.seq), (3, 2));
        assert!(k0 < k1, "same instant breaks ties by seq");
        assert!(k2 < k0, "earlier instant sorts first regardless of seq");
    }

    #[test]
    fn deref_exposes_record_fields() {
        let mut log = LogStore::new();
        log.append(SimTime::from_secs(1), (7u32, "x"));
        let entry = log.last().unwrap();
        assert_eq!(entry.0, 7);
        assert_eq!(entry.key.seq, 0);
    }

    #[test]
    fn merge_is_globally_ordered_and_complete() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        a.append(SimTime::from_secs(10), "a0");
        a.append(SimTime::from_secs(30), "a1");
        b.append(SimTime::from_secs(20), "b0");
        b.append(SimTime::from_secs(10), "b1");
        let merged = LogStore::merge([&a, &b]);
        assert_eq!(merged.len(), 4);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        // Same-instant records from different shards order by shard id.
        assert_eq!(merged[0].record, "a0");
        assert_eq!(merged[1].record, "b1");
    }

    #[test]
    fn merge_owned_matches_borrowing_merge() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        for i in 0..10u64 {
            a.append(SimTime::from_secs(100 - i), i);
            b.append(SimTime::from_secs(i), 100 + i);
        }
        let borrowed: Vec<LogKey> = LogStore::merge([&a, &b]).iter().map(|e| e.key).collect();
        let owned: Vec<LogKey> = LogStore::merge_owned([a, b]).iter().map(|e| e.key).collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn sink_trait_object_compatible_generics() {
        fn emit_twice<S: EventSink<u32>>(sink: &mut S) {
            sink.emit(SimTime::from_secs(1), 1);
            sink.emit(SimTime::from_secs(2), 2);
        }
        let mut log = LogStore::new();
        emit_twice(&mut log);
        assert_eq!(log.len(), 2);
    }
}
