//! The unified event-log API.
//!
//! Every subsystem that records history — the identity stack's login
//! log, the mail provider's activity log, the defense notification log —
//! writes through the same two pieces:
//!
//! * [`LogStore<T>`]: an append-only log *segment* whose entries are
//!   stamped with a globally orderable [`LogKey`] `(at, shard, seq)`.
//!   A single-threaded scenario owns one segment per log (shard 0); the
//!   sharded engine gives every logical shard its own segment and merges
//!   them afterwards.
//! * [`EventSink<T>`]: the write interface, so code that only needs to
//!   emit records (world adapters, defense hooks) does not care which
//!   segment it is writing into.
//!
//! The key design constraint is determinism: `seq` is allocated densely
//! per shard in append order, so a segment's contents are a pure
//! function of the events that shard processed — independent of how
//! many worker threads drove the run. [`LogStore::merge`] then produces
//! one globally ordered view, sorted by `(at, shard, seq)`; since every
//! key is unique the merged order is total and reproducible, which is
//! what makes whole-dataset digests byte-identical across worker
//! counts.
//!
//! Merging is a true k-way merge, not concatenate-then-sort: each
//! segment tracks whether its appends arrived in time order (they
//! almost always do — a shard emits while advancing its simulated
//! clock), sorted segments are consumed in place, the rare unsorted
//! segment is sorted *on its own*, and a cursor heap interleaves the
//! k sorted streams in `O(n log k)`. [`LogStore::merge_into`] exposes
//! the same merge over a caller-owned, pre-sized output buffer so
//! repeated merges (benchmarks, digest loops) reuse one allocation.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Deref;

/// Identifier of the logical shard a record was produced on.
///
/// Shard assignment is part of scenario *semantics* (like the seed):
/// records keep their shard id through merging, and a scenario's shard
/// count changes its event interleaving just as a different seed would.
/// Worker-thread count, by contrast, must never influence log contents.
pub type ShardId = u16;

/// Globally unique, totally ordered key carried by every log record.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LogKey {
    /// Simulated instant the record was emitted.
    pub at: SimTime,
    /// Logical shard that produced the record.
    pub shard: ShardId,
    /// Dense per-shard append counter; breaks ties among same-instant
    /// records on one shard while preserving their emission order.
    pub seq: u64,
}

/// A log record together with its ordering key.
///
/// Derefs to the record so existing call sites (`r.at`, `r.actor`,
/// `matches!(e.kind, ..)`) keep working unchanged on stamped entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The global ordering key: `(SimTime, shard, seq)`.
    pub key: LogKey,
    /// The domain record itself.
    pub record: T,
}

impl<T> Deref for Stamped<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.record
    }
}

impl<T> AsRef<T> for Stamped<T> {
    fn as_ref(&self) -> &T {
        &self.record
    }
}

/// Write interface shared by every log producer.
pub trait EventSink<T> {
    /// Append `record` as happening at `at`, returning the key it was
    /// stamped with.
    fn emit(&mut self, at: SimTime, record: T) -> LogKey;
}

/// An append-only log segment.
///
/// Entries arrive in emission order, which is *approximately* — not
/// exactly — time order (concurrent sessions interleave, exactly like
/// real log ingestion). Queries must therefore not assume the segment
/// is time-sorted; [`LogStore::merge`] sorts by key when a globally
/// ordered view is needed.
#[derive(Debug, Clone)]
pub struct LogStore<T> {
    shard: ShardId,
    entries: Vec<Stamped<T>>,
    /// Whether appends have arrived in non-decreasing `at` order so far.
    /// Maintained incrementally by [`LogStore::append`]; lets
    /// [`LogStore::merge`] consume the segment without re-sorting it.
    time_sorted: bool,
}

impl<T> Default for LogStore<T> {
    fn default() -> Self {
        LogStore::new()
    }
}

impl<T> LogStore<T> {
    /// A shard-0 segment (single-threaded scenarios).
    pub fn new() -> Self {
        Self::for_shard(0)
    }

    /// A segment owned by logical shard `shard`.
    pub fn for_shard(shard: ShardId) -> Self {
        LogStore {
            shard,
            entries: Vec::new(),
            time_sorted: true,
        }
    }

    /// The logical shard this segment belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Append in emission order, stamping the next dense sequence
    /// number for this shard.
    pub fn append(&mut self, at: SimTime, record: T) -> LogKey {
        if let Some(last) = self.entries.last() {
            if at < last.key.at {
                self.time_sorted = false;
            }
        }
        let key = LogKey {
            at,
            shard: self.shard,
            seq: self.entries.len() as u64,
        };
        self.entries.push(Stamped { key, record });
        key
    }

    /// Whether every append so far arrived in non-decreasing time
    /// order. When true, the segment is already in `(at, shard, seq)`
    /// key order (shard is constant and `seq` ascends), so merges
    /// consume it without sorting.
    pub fn is_time_sorted(&self) -> bool {
        self.time_sorted
    }

    /// All entries in emission order.
    pub fn entries(&self) -> &[Stamped<T>] {
        &self.entries
    }

    /// The records alone, in emission order.
    pub fn records(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|e| &e.record)
    }

    /// Iterator over the stamped entries in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Stamped<T>> {
        self.entries.iter()
    }

    /// Number of records in this segment.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recently emitted entry, if any.
    pub fn last(&self) -> Option<&Stamped<T>> {
        self.entries.last()
    }

    /// Merge per-shard segments into one globally ordered view, sorted
    /// by `(at, shard, seq)`. Keys are unique, so the result is a total
    /// order independent of the segment iteration order.
    ///
    /// This is a k-way merge over the per-segment streams, not a sort
    /// of the concatenation: time-sorted segments (the overwhelmingly
    /// common case — see [`LogStore::is_time_sorted`]) are consumed in
    /// place, and only a segment that recorded out-of-order appends is
    /// sorted, on its own, before merging.
    pub fn merge<'a>(segments: impl IntoIterator<Item = &'a LogStore<T>>) -> Vec<&'a Stamped<T>>
    where
        T: 'a,
    {
        let mut out = Vec::new();
        Self::merge_into(segments, &mut out);
        out
    }

    /// [`LogStore::merge`] into a caller-owned buffer, so repeated
    /// merges (benchmark loops, digest passes) reuse one allocation.
    /// The buffer is cleared, then reserved to the exact total size
    /// before any entry is pushed.
    pub fn merge_into<'a>(
        segments: impl IntoIterator<Item = &'a LogStore<T>>,
        out: &mut Vec<&'a Stamped<T>>,
    ) where
        T: 'a,
    {
        out.clear();
        let mut total = 0usize;
        let mut cursors: Vec<MergeCursor<'a, T>> = Vec::new();
        for seg in segments {
            if seg.entries.is_empty() {
                continue;
            }
            total += seg.entries.len();
            if seg.time_sorted {
                debug_assert!(
                    seg.entries.windows(2).all(|w| w[0].key < w[1].key),
                    "segment flagged time-sorted has out-of-order keys (shard {})",
                    seg.shard
                );
                cursors.push(MergeCursor::Sorted(seg.entries.iter()));
            } else {
                let mut view: Vec<&'a Stamped<T>> = seg.entries.iter().collect();
                view.sort_by_key(|e| e.key);
                cursors.push(MergeCursor::Resorted(view.into_iter()));
            }
        }
        out.reserve(total);
        match cursors.len() {
            0 => {}
            1 => out.extend(std::iter::from_fn(move || cursors[0].next())),
            _ => {
                let mut heads: Vec<Option<&'a Stamped<T>>> =
                    cursors.iter_mut().map(MergeCursor::next).collect();
                let mut heap: BinaryHeap<Reverse<(LogKey, usize)>> = heads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, head)| head.map(|e| Reverse((e.key, i))))
                    .collect();
                while let Some(Reverse((key, i))) = heap.pop() {
                    let entry = heads[i].take().expect("popped cursor has a head");
                    debug_assert!(
                        out.last().is_none_or(|prev| prev.key < key),
                        "k-way merge produced out-of-order output"
                    );
                    out.push(entry);
                    if let Some(next) = cursors[i].next() {
                        debug_assert!(
                            next.key > key,
                            "merge input segment is not sorted: {:?} after {key:?}",
                            next.key
                        );
                        heads[i] = Some(next);
                        heap.push(Reverse((next.key, i)));
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), total, "k-way merge dropped or duplicated entries");
    }

    /// Consuming variant of [`LogStore::merge`], for assembling the
    /// final global log out of finished shard segments. Same k-way
    /// strategy: per-segment sort only when a segment recorded
    /// out-of-order appends, never a sort of the concatenation.
    pub fn merge_owned(segments: impl IntoIterator<Item = LogStore<T>>) -> Vec<Stamped<T>> {
        let mut total = 0usize;
        let mut iters: Vec<std::vec::IntoIter<Stamped<T>>> = Vec::new();
        for seg in segments {
            if seg.entries.is_empty() {
                continue;
            }
            total += seg.entries.len();
            let mut entries = seg.entries;
            if !seg.time_sorted {
                entries.sort_by_key(|e| e.key);
            }
            iters.push(entries.into_iter());
        }
        let mut out = Vec::with_capacity(total);
        let mut heads: Vec<Option<Stamped<T>>> = iters.iter_mut().map(Iterator::next).collect();
        let mut heap: BinaryHeap<Reverse<(LogKey, usize)>> = heads
            .iter()
            .enumerate()
            .filter_map(|(i, head)| head.as_ref().map(|e| Reverse((e.key, i))))
            .collect();
        while let Some(Reverse((key, i))) = heap.pop() {
            let entry = heads[i].take().expect("popped cursor has a head");
            debug_assert_eq!(entry.key, key);
            out.push(entry);
            if let Some(next) = iters[i].next() {
                debug_assert!(next.key > key, "merge input segment is not sorted");
                heap.push(Reverse((next.key, i)));
                heads[i] = Some(next);
            }
        }
        out
    }
}

/// One segment's position in an in-progress k-way merge: a plain slice
/// iterator for segments already in key order, an owned sorted view for
/// the rare segment that recorded out-of-order appends.
enum MergeCursor<'a, T> {
    Sorted(std::slice::Iter<'a, Stamped<T>>),
    Resorted(std::vec::IntoIter<&'a Stamped<T>>),
}

impl<'a, T> MergeCursor<'a, T> {
    fn next(&mut self) -> Option<&'a Stamped<T>> {
        match self {
            MergeCursor::Sorted(it) => it.next(),
            MergeCursor::Resorted(it) => it.next(),
        }
    }
}

impl<T> EventSink<T> for LogStore<T> {
    fn emit(&mut self, at: SimTime, record: T) -> LogKey {
        self.append(at, record)
    }
}

impl<'a, T> IntoIterator for &'a LogStore<T> {
    type Item = &'a Stamped<T>;
    type IntoIter = std::slice::Iter<'a, Stamped<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_dense_and_ordered_per_shard() {
        let mut log = LogStore::for_shard(3);
        let k0 = log.append(SimTime::from_secs(10), "a");
        let k1 = log.append(SimTime::from_secs(10), "b");
        let k2 = log.append(SimTime::from_secs(5), "c"); // out-of-order arrival
        assert_eq!((k0.shard, k0.seq), (3, 0));
        assert_eq!((k1.shard, k1.seq), (3, 1));
        assert_eq!((k2.shard, k2.seq), (3, 2));
        assert!(k0 < k1, "same instant breaks ties by seq");
        assert!(k2 < k0, "earlier instant sorts first regardless of seq");
    }

    #[test]
    fn deref_exposes_record_fields() {
        let mut log = LogStore::new();
        log.append(SimTime::from_secs(1), (7u32, "x"));
        let entry = log.last().unwrap();
        assert_eq!(entry.0, 7);
        assert_eq!(entry.key.seq, 0);
    }

    #[test]
    fn merge_is_globally_ordered_and_complete() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        a.append(SimTime::from_secs(10), "a0");
        a.append(SimTime::from_secs(30), "a1");
        b.append(SimTime::from_secs(20), "b0");
        b.append(SimTime::from_secs(10), "b1");
        let merged = LogStore::merge([&a, &b]);
        assert_eq!(merged.len(), 4);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        // Same-instant records from different shards order by shard id.
        assert_eq!(merged[0].record, "a0");
        assert_eq!(merged[1].record, "b1");
    }

    #[test]
    fn merge_owned_matches_borrowing_merge() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        for i in 0..10u64 {
            a.append(SimTime::from_secs(100 - i), i);
            b.append(SimTime::from_secs(i), 100 + i);
        }
        let borrowed: Vec<LogKey> = LogStore::merge([&a, &b]).iter().map(|e| e.key).collect();
        let owned: Vec<LogKey> = LogStore::merge_owned([a, b]).iter().map(|e| e.key).collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn time_sorted_flag_tracks_append_order() {
        let mut log = LogStore::for_shard(1);
        assert!(log.is_time_sorted(), "empty segment is trivially sorted");
        log.append(SimTime::from_secs(5), "a");
        log.append(SimTime::from_secs(5), "b"); // equal instants stay sorted
        log.append(SimTime::from_secs(9), "c");
        assert!(log.is_time_sorted());
        log.append(SimTime::from_secs(2), "d"); // regression
        assert!(!log.is_time_sorted());
    }

    #[test]
    fn merge_handles_empty_and_unsorted_segments() {
        let empty: LogStore<&str> = LogStore::for_shard(9);
        let mut sorted = LogStore::for_shard(0);
        sorted.append(SimTime::from_secs(1), "s0");
        sorted.append(SimTime::from_secs(4), "s1");
        let mut unsorted = LogStore::for_shard(1);
        unsorted.append(SimTime::from_secs(3), "u0");
        unsorted.append(SimTime::from_secs(1), "u1");
        unsorted.append(SimTime::from_secs(3), "u2");
        assert!(!unsorted.is_time_sorted());
        let merged = LogStore::merge([&empty, &sorted, &unsorted]);
        let records: Vec<&str> = merged.iter().map(|e| e.record).collect();
        assert_eq!(records, vec!["s0", "u1", "u0", "u2", "s1"]);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn merge_into_reuses_the_output_buffer() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        for i in 0..50u64 {
            a.append(SimTime::from_secs(2 * i), i);
            b.append(SimTime::from_secs(2 * i + 1), i);
        }
        let mut out = Vec::new();
        LogStore::merge_into([&a, &b], &mut out);
        assert_eq!(out.len(), 100);
        let capacity = out.capacity();
        LogStore::merge_into([&a, &b], &mut out);
        assert_eq!(out.len(), 100);
        assert_eq!(out.capacity(), capacity, "repeat merge must not reallocate");
        assert_eq!(out, LogStore::merge([&a, &b]));
    }

    #[test]
    fn sink_trait_object_compatible_generics() {
        fn emit_twice<S: EventSink<u32>>(sink: &mut S) {
            sink.emit(SimTime::from_secs(1), 1);
            sink.emit(SimTime::from_secs(2), 2);
        }
        let mut log = LogStore::new();
        emit_twice(&mut log);
        assert_eq!(log.len(), 2);
    }
}
