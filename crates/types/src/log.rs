//! The unified event-log API.
//!
//! Every subsystem that records history — the identity stack's login
//! log, the mail provider's activity log, the defense notification log —
//! writes through the same two pieces:
//!
//! * [`LogStore<T>`]: an append-only log *segment* whose entries are
//!   stamped with a globally orderable [`LogKey`] `(at, shard, seq)`.
//!   A single-threaded scenario owns one segment per log (shard 0); the
//!   sharded engine gives every logical shard its own segment and merges
//!   them afterwards.
//! * [`EventSink<T>`]: the write interface, so code that only needs to
//!   emit records (world adapters, defense hooks) does not care which
//!   segment it is writing into.
//!
//! # Columnar layout
//!
//! A segment stores its entries as *columns*, not an array of structs:
//! a timestamp column (`Vec<SimTime>`) and a payload column (`Vec<T>`).
//! The rest of the key is implicit — `shard` is constant per segment
//! and `seq` is the dense append counter, i.e. the row index — so the
//! key column costs nothing to materialize. The win at scale: scans
//! that only need timestamps (merge cursors, day-window queries) touch
//! 8 bytes per row instead of dragging whole records through cache,
//! and a segment of `n` records costs two allocations, not `n`.
//!
//! Borrowing iteration yields [`Entry`] — a `Copy` (key, `&record`)
//! pair that derefs to the record, so call sites read `e.at`, `e.kind`
//! etc. exactly as they did when entries were stored as structs. The
//! owned form [`Stamped`] survives for consumers that need to hold
//! records outside the segment's lifetime.
//!
//! The key design constraint is determinism: `seq` is allocated densely
//! per shard in append order, so a segment's contents are a pure
//! function of the events that shard processed — independent of how
//! many worker threads drove the run. [`LogStore::merge`] then produces
//! one globally ordered view, sorted by `(at, shard, seq)`; since every
//! key is unique the merged order is total and reproducible, which is
//! what makes whole-dataset digests byte-identical across worker
//! counts.
//!
//! Merging is a true k-way merge, not concatenate-then-sort: each
//! segment tracks whether its appends arrived in time order (they
//! almost always do — a shard emits while advancing its simulated
//! clock), sorted segments are consumed straight off their columns, the
//! rare unsorted segment is sorted *on its own*, and a cursor heap
//! interleaves the k sorted streams in `O(n log k)`.
//! [`LogStore::merge_into`] exposes the same merge over a caller-owned,
//! pre-sized output buffer so repeated merges reuse one allocation.
//!
//! For worlds whose merged logs outgrow RAM, [`LogStore::spill`]
//! streams a merged view to disk in the exact byte format the dataset
//! digest hashes, so the spilled file's [`Fnv1a`] digest equals the
//! in-memory one and can be re-verified later with
//! [`read_spilled_digest`].

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Debug;
use std::io::{BufRead, Write};
use std::ops::Deref;
use std::path::Path;

/// Identifier of the logical shard a record was produced on.
///
/// Shard assignment is part of scenario *semantics* (like the seed):
/// records keep their shard id through merging, and a scenario's shard
/// count changes its event interleaving just as a different seed would.
/// Worker-thread count, by contrast, must never influence log contents.
pub type ShardId = u16;

/// Globally unique, totally ordered key carried by every log record.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LogKey {
    /// Simulated instant the record was emitted.
    pub at: SimTime,
    /// Logical shard that produced the record.
    pub shard: ShardId,
    /// Dense per-shard append counter; breaks ties among same-instant
    /// records on one shard while preserving their emission order.
    pub seq: u64,
}

/// A log record together with its ordering key, owned.
///
/// The borrowing analogue handed out by segment iteration is
/// [`Entry`]; `Stamped` is for consumers that keep records beyond the
/// segment's lifetime (e.g. [`LogStore::merge_owned`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The global ordering key: `(SimTime, shard, seq)`.
    pub key: LogKey,
    /// The domain record itself.
    pub record: T,
}

impl<T> Deref for Stamped<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.record
    }
}

impl<T> AsRef<T> for Stamped<T> {
    fn as_ref(&self) -> &T {
        &self.record
    }
}

/// A borrowed log entry: the ordering key (reassembled from the
/// segment's columns) plus a reference into the payload column.
///
/// `Entry` is `Copy` and derefs to the record, so existing call sites
/// (`r.at`, `r.actor`, `matches!(e.kind, ..)`) work unchanged on
/// entries read out of a columnar segment.
#[derive(Debug)]
pub struct Entry<'a, T> {
    /// The global ordering key: `(SimTime, shard, seq)`.
    pub key: LogKey,
    /// The domain record, borrowed from the segment's payload column.
    pub record: &'a T,
}

impl<'a, T> Clone for Entry<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for Entry<'a, T> {}

impl<'a, T> Deref for Entry<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.record
    }
}

impl<'a, T> AsRef<T> for Entry<'a, T> {
    fn as_ref(&self) -> &T {
        self.record
    }
}

impl<'a, T: PartialEq> PartialEq for Entry<'a, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.record == other.record
    }
}

impl<'a, T> Entry<'a, T> {
    /// Clone into an owned [`Stamped`] record.
    pub fn to_stamped(self) -> Stamped<T>
    where
        T: Clone,
    {
        Stamped { key: self.key, record: self.record.clone() }
    }
}

/// Write interface shared by every log producer.
pub trait EventSink<T> {
    /// Append `record` as happening at `at`, returning the key it was
    /// stamped with.
    fn emit(&mut self, at: SimTime, record: T) -> LogKey;
}

/// An append-only columnar log segment.
///
/// Entries arrive in emission order, which is *approximately* — not
/// exactly — time order (concurrent sessions interleave, exactly like
/// real log ingestion). Queries must therefore not assume the segment
/// is time-sorted; [`LogStore::merge`] sorts by key when a globally
/// ordered view is needed.
///
/// ```
/// use mhw_types::{LogStore, SimTime};
///
/// let mut log = LogStore::for_shard(2);
/// log.append(SimTime::from_secs(10), "login");
/// log.append(SimTime::from_secs(11), "send");
/// let last = log.last().unwrap();
/// assert_eq!((*last.record, last.key.seq, last.key.shard), ("send", 1, 2));
/// assert_eq!(log.ats(), &[SimTime::from_secs(10), SimTime::from_secs(11)]);
/// ```
#[derive(Debug, Clone)]
pub struct LogStore<T> {
    shard: ShardId,
    /// Timestamp column: `ats[i]` is the emission instant of row `i`.
    ats: Vec<SimTime>,
    /// Payload column: `records[i]` is the domain record of row `i`.
    /// The row index doubles as the key's `seq`.
    records: Vec<T>,
    /// Whether appends have arrived in non-decreasing `at` order so far.
    /// Maintained incrementally by [`LogStore::append`]; lets
    /// [`LogStore::merge`] consume the segment without re-sorting it.
    time_sorted: bool,
}

impl<T> Default for LogStore<T> {
    fn default() -> Self {
        LogStore::new()
    }
}

impl<T> LogStore<T> {
    /// A shard-0 segment (single-threaded scenarios).
    pub fn new() -> Self {
        Self::for_shard(0)
    }

    /// A segment owned by logical shard `shard`.
    pub fn for_shard(shard: ShardId) -> Self {
        LogStore {
            shard,
            ats: Vec::new(),
            records: Vec::new(),
            time_sorted: true,
        }
    }

    /// The logical shard this segment belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Append in emission order, stamping the next dense sequence
    /// number for this shard.
    pub fn append(&mut self, at: SimTime, record: T) -> LogKey {
        if let Some(&last) = self.ats.last() {
            if at < last {
                self.time_sorted = false;
            }
        }
        let key = LogKey {
            at,
            shard: self.shard,
            seq: self.ats.len() as u64,
        };
        self.ats.push(at);
        self.records.push(record);
        key
    }

    /// Whether every append so far arrived in non-decreasing time
    /// order. When true, the segment is already in `(at, shard, seq)`
    /// key order (shard is constant and `seq` ascends), so merges
    /// consume it without sorting.
    pub fn is_time_sorted(&self) -> bool {
        self.time_sorted
    }

    /// The timestamp column: emission instant per row, in append order.
    /// Timestamp-only scans (day windows, merge planning) read this
    /// without touching the payload column.
    pub fn ats(&self) -> &[SimTime] {
        &self.ats
    }

    /// The key of row `i` (reassembled: shard is constant, `seq == i`).
    fn key_at(&self, i: usize) -> LogKey {
        LogKey { at: self.ats[i], shard: self.shard, seq: i as u64 }
    }

    /// All entries in emission order.
    pub fn entries(&self) -> Entries<'_, T> {
        self.iter()
    }

    /// The records alone, in emission order (a straight scan of the
    /// payload column).
    pub fn records(&self) -> std::slice::Iter<'_, T> {
        self.records.iter()
    }

    /// Iterator over the stamped entries in emission order.
    pub fn iter(&self) -> Entries<'_, T> {
        self.iter_from(0)
    }

    /// Iterator over entries starting at row `start` — the incremental
    /// form cursor-based consumers (the behavioral monitor) use to see
    /// only what appeared since their last drain.
    pub fn iter_from(&self, start: usize) -> Entries<'_, T> {
        let start = start.min(self.records.len());
        Entries {
            ats: &self.ats[start..],
            records: self.records[start..].iter(),
            shard: self.shard,
            next_seq: start as u64,
        }
    }

    /// Number of records in this segment.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The entry at row `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<Entry<'_, T>> {
        self.records.get(i).map(|record| Entry { key: self.key_at(i), record })
    }

    /// The first emitted entry, if any.
    pub fn first(&self) -> Option<Entry<'_, T>> {
        self.get(0)
    }

    /// The most recently emitted entry, if any.
    pub fn last(&self) -> Option<Entry<'_, T>> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// Merge per-shard segments into one globally ordered view, sorted
    /// by `(at, shard, seq)`. Keys are unique, so the result is a total
    /// order independent of the segment iteration order.
    ///
    /// This is a k-way merge over the per-segment streams, not a sort
    /// of the concatenation: time-sorted segments (the overwhelmingly
    /// common case — see [`LogStore::is_time_sorted`]) are consumed
    /// straight off their columns, and only a segment that recorded
    /// out-of-order appends is sorted, on its own, before merging.
    pub fn merge<'a>(segments: impl IntoIterator<Item = &'a LogStore<T>>) -> Vec<Entry<'a, T>>
    where
        T: 'a,
    {
        let mut out = Vec::new();
        Self::merge_into(segments, &mut out);
        out
    }

    /// [`LogStore::merge`] into a caller-owned buffer, so repeated
    /// merges (benchmark loops, digest passes) reuse one allocation.
    /// The buffer is cleared, then reserved to the exact total size
    /// before any entry is pushed.
    pub fn merge_into<'a>(
        segments: impl IntoIterator<Item = &'a LogStore<T>>,
        out: &mut Vec<Entry<'a, T>>,
    ) where
        T: 'a,
    {
        out.clear();
        let mut total = 0usize;
        let mut cursors: Vec<MergeCursor<'a, T>> = Vec::new();
        for seg in segments {
            if seg.is_empty() {
                continue;
            }
            total += seg.len();
            if seg.time_sorted {
                debug_assert!(
                    seg.ats.windows(2).all(|w| w[0] <= w[1]),
                    "segment flagged time-sorted has out-of-order timestamps (shard {})",
                    seg.shard
                );
                cursors.push(MergeCursor::Sorted(seg.iter()));
            } else {
                let mut view: Vec<Entry<'a, T>> = seg.iter().collect();
                view.sort_by_key(|e| e.key);
                cursors.push(MergeCursor::Resorted(view.into_iter()));
            }
        }
        out.reserve(total);
        match cursors.len() {
            0 => {}
            1 => out.extend(std::iter::from_fn(move || cursors[0].next())),
            _ => {
                let mut heads: Vec<Option<Entry<'a, T>>> =
                    cursors.iter_mut().map(MergeCursor::next).collect();
                let mut heap: BinaryHeap<Reverse<(LogKey, usize)>> = heads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, head)| head.map(|e| Reverse((e.key, i))))
                    .collect();
                while let Some(Reverse((key, i))) = heap.pop() {
                    let entry = heads[i].take().expect("popped cursor has a head");
                    debug_assert!(
                        out.last().is_none_or(|prev| prev.key < key),
                        "k-way merge produced out-of-order output"
                    );
                    out.push(entry);
                    if let Some(next) = cursors[i].next() {
                        debug_assert!(
                            next.key > key,
                            "merge input segment is not sorted: {:?} after {key:?}",
                            next.key
                        );
                        heads[i] = Some(next);
                        heap.push(Reverse((next.key, i)));
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), total, "k-way merge dropped or duplicated entries");
    }

    /// Consuming variant of [`LogStore::merge`], for assembling the
    /// final global log out of finished shard segments. Same k-way
    /// strategy: per-segment sort only when a segment recorded
    /// out-of-order appends, never a sort of the concatenation.
    pub fn merge_owned(segments: impl IntoIterator<Item = LogStore<T>>) -> Vec<Stamped<T>> {
        let mut total = 0usize;
        let mut iters: Vec<std::vec::IntoIter<Stamped<T>>> = Vec::new();
        for seg in segments {
            if seg.is_empty() {
                continue;
            }
            total += seg.len();
            let shard = seg.shard;
            let time_sorted = seg.time_sorted;
            let mut entries: Vec<Stamped<T>> = seg
                .ats
                .into_iter()
                .zip(seg.records)
                .enumerate()
                .map(|(i, (at, record))| Stamped {
                    key: LogKey { at, shard, seq: i as u64 },
                    record,
                })
                .collect();
            if !time_sorted {
                entries.sort_by_key(|e| e.key);
            }
            iters.push(entries.into_iter());
        }
        let mut out = Vec::with_capacity(total);
        let mut heads: Vec<Option<Stamped<T>>> = iters.iter_mut().map(Iterator::next).collect();
        let mut heap: BinaryHeap<Reverse<(LogKey, usize)>> = heads
            .iter()
            .enumerate()
            .filter_map(|(i, head)| head.as_ref().map(|e| Reverse((e.key, i))))
            .collect();
        while let Some(Reverse((key, i))) = heap.pop() {
            let entry = heads[i].take().expect("popped cursor has a head");
            debug_assert_eq!(entry.key, key);
            out.push(entry);
            if let Some(next) = iters[i].next() {
                debug_assert!(next.key > key, "merge input segment is not sorted");
                heap.push(Reverse((next.key, i)));
                heads[i] = Some(next);
            }
        }
        out
    }
}

impl<T: Debug> LogStore<T> {
    /// Stream a merged view to `path`, one `"{key:?}|{record:?}\n"`
    /// line per entry — exactly the bytes the dataset digest hashes, so
    /// the returned [`SpillFile::digest`] equals the digest of the same
    /// entries hashed in memory, and [`read_spilled_digest`] recovers
    /// it from disk later without holding the log in RAM.
    pub fn spill<'a>(
        entries: impl IntoIterator<Item = Entry<'a, T>>,
        path: &Path,
    ) -> std::io::Result<SpillFile>
    where
        T: 'a,
    {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        let mut digest = Fnv1a::new();
        let mut lines = 0u64;
        let mut bytes = 0u64;
        let mut line = String::new();
        for e in entries {
            use std::fmt::Write as _;
            line.clear();
            writeln!(line, "{:?}|{:?}", e.key, e.record).expect("format entry");
            digest.write(line.as_bytes());
            writer.write_all(line.as_bytes())?;
            lines += 1;
            bytes += line.len() as u64;
        }
        writer.flush()?;
        Ok(SpillFile {
            path: path.display().to_string(),
            lines,
            bytes,
            digest: digest.finish(),
        })
    }
}

/// Receipt for one spilled log: where it went, how much, and the FNV
/// digest of its bytes (identical to digesting the same merged entries
/// in memory).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillFile {
    /// Where the merged log landed (display form of the spill path,
    /// kept as a `String` so the receipt serializes into bench JSON).
    pub path: String,
    /// Number of entries (one line each).
    pub lines: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// FNV-1a digest over every written byte.
    pub digest: u64,
}

/// Re-digest a spilled log from disk, streaming line by line, returning
/// `(lines, digest)`. Matching the [`SpillFile`] the spill returned
/// proves the on-disk copy is intact and byte-equivalent to the
/// in-memory merged view it replaced.
pub fn read_spilled_digest(path: &Path) -> std::io::Result<(u64, u64)> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut digest = Fnv1a::new();
    let mut lines = 0u64;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        digest.write(&buf);
        lines += 1;
    }
    Ok((lines, digest.finish()))
}

pub use crate::fnv::Fnv1a;

/// Borrowing iterator over a segment's entries, reassembling each
/// [`LogKey`] from the timestamp column and the implicit (shard, seq)
/// coordinates.
#[derive(Debug, Clone)]
pub struct Entries<'a, T> {
    ats: &'a [SimTime],
    records: std::slice::Iter<'a, T>,
    shard: ShardId,
    next_seq: u64,
}

impl<'a, T> Iterator for Entries<'a, T> {
    type Item = Entry<'a, T>;

    fn next(&mut self) -> Option<Entry<'a, T>> {
        let record = self.records.next()?;
        let (&at, rest) = self.ats.split_first().expect("columns same length");
        self.ats = rest;
        let key = LogKey { at, shard: self.shard, seq: self.next_seq };
        self.next_seq += 1;
        Some(Entry { key, record })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.records.size_hint()
    }
}

impl<'a, T> ExactSizeIterator for Entries<'a, T> {}

/// One segment's position in an in-progress k-way merge: a plain
/// column-walking iterator for segments already in key order, an owned
/// sorted view for the rare segment that recorded out-of-order appends.
enum MergeCursor<'a, T> {
    Sorted(Entries<'a, T>),
    Resorted(std::vec::IntoIter<Entry<'a, T>>),
}

impl<'a, T> MergeCursor<'a, T> {
    fn next(&mut self) -> Option<Entry<'a, T>> {
        match self {
            MergeCursor::Sorted(it) => it.next(),
            MergeCursor::Resorted(it) => it.next(),
        }
    }
}

impl<T> EventSink<T> for LogStore<T> {
    fn emit(&mut self, at: SimTime, record: T) -> LogKey {
        self.append(at, record)
    }
}

impl<'a, T> IntoIterator for &'a LogStore<T> {
    type Item = Entry<'a, T>;
    type IntoIter = Entries<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_dense_and_ordered_per_shard() {
        let mut log = LogStore::for_shard(3);
        let k0 = log.append(SimTime::from_secs(10), "a");
        let k1 = log.append(SimTime::from_secs(10), "b");
        let k2 = log.append(SimTime::from_secs(5), "c"); // out-of-order arrival
        assert_eq!((k0.shard, k0.seq), (3, 0));
        assert_eq!((k1.shard, k1.seq), (3, 1));
        assert_eq!((k2.shard, k2.seq), (3, 2));
        assert!(k0 < k1, "same instant breaks ties by seq");
        assert!(k2 < k0, "earlier instant sorts first regardless of seq");
    }

    #[test]
    fn deref_exposes_record_fields() {
        let mut log = LogStore::new();
        log.append(SimTime::from_secs(1), (7u32, "x"));
        let entry = log.last().unwrap();
        assert_eq!(entry.0, 7);
        assert_eq!(entry.key.seq, 0);
    }

    #[test]
    fn columns_reassemble_the_entries() {
        let mut log = LogStore::for_shard(5);
        for i in 0..10u64 {
            log.append(SimTime::from_secs(100 + i), i * i);
        }
        assert_eq!(log.ats().len(), 10);
        for (i, e) in log.iter().enumerate() {
            assert_eq!(e.key, LogKey { at: log.ats()[i], shard: 5, seq: i as u64 });
            assert_eq!(*e.record, (i * i) as u64);
            assert_eq!(log.get(i).unwrap(), e);
        }
        assert_eq!(log.iter_from(7).count(), 3);
        assert_eq!(log.iter_from(7).next().unwrap().key.seq, 7);
        assert!(log.iter_from(99).next().is_none());
        assert_eq!(log.first().unwrap().key.seq, 0);
    }

    #[test]
    fn merge_is_globally_ordered_and_complete() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        a.append(SimTime::from_secs(10), "a0");
        a.append(SimTime::from_secs(30), "a1");
        b.append(SimTime::from_secs(20), "b0");
        b.append(SimTime::from_secs(10), "b1");
        let merged = LogStore::merge([&a, &b]);
        assert_eq!(merged.len(), 4);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        // Same-instant records from different shards order by shard id.
        assert_eq!(*merged[0].record, "a0");
        assert_eq!(*merged[1].record, "b1");
    }

    #[test]
    fn merge_owned_matches_borrowing_merge() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        for i in 0..10u64 {
            a.append(SimTime::from_secs(100 - i), i);
            b.append(SimTime::from_secs(i), 100 + i);
        }
        let borrowed: Vec<LogKey> = LogStore::merge([&a, &b]).iter().map(|e| e.key).collect();
        let owned: Vec<LogKey> = LogStore::merge_owned([a, b]).iter().map(|e| e.key).collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn time_sorted_flag_tracks_append_order() {
        let mut log = LogStore::for_shard(1);
        assert!(log.is_time_sorted(), "empty segment is trivially sorted");
        log.append(SimTime::from_secs(5), "a");
        log.append(SimTime::from_secs(5), "b"); // equal instants stay sorted
        log.append(SimTime::from_secs(9), "c");
        assert!(log.is_time_sorted());
        log.append(SimTime::from_secs(2), "d"); // regression
        assert!(!log.is_time_sorted());
    }

    #[test]
    fn merge_handles_empty_and_unsorted_segments() {
        let empty: LogStore<&str> = LogStore::for_shard(9);
        let mut sorted = LogStore::for_shard(0);
        sorted.append(SimTime::from_secs(1), "s0");
        sorted.append(SimTime::from_secs(4), "s1");
        let mut unsorted = LogStore::for_shard(1);
        unsorted.append(SimTime::from_secs(3), "u0");
        unsorted.append(SimTime::from_secs(1), "u1");
        unsorted.append(SimTime::from_secs(3), "u2");
        assert!(!unsorted.is_time_sorted());
        let merged = LogStore::merge([&empty, &sorted, &unsorted]);
        let records: Vec<&str> = merged.iter().map(|e| *e.record).collect();
        assert_eq!(records, vec!["s0", "u1", "u0", "u2", "s1"]);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn merge_into_reuses_the_output_buffer() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        for i in 0..50u64 {
            a.append(SimTime::from_secs(2 * i), i);
            b.append(SimTime::from_secs(2 * i + 1), i);
        }
        let mut out = Vec::new();
        LogStore::merge_into([&a, &b], &mut out);
        assert_eq!(out.len(), 100);
        let capacity = out.capacity();
        LogStore::merge_into([&a, &b], &mut out);
        assert_eq!(out.len(), 100);
        assert_eq!(out.capacity(), capacity, "repeat merge must not reallocate");
        assert_eq!(out, LogStore::merge([&a, &b]));
    }

    #[test]
    fn sink_trait_object_compatible_generics() {
        fn emit_twice<S: EventSink<u32>>(sink: &mut S) {
            sink.emit(SimTime::from_secs(1), 1);
            sink.emit(SimTime::from_secs(2), 2);
        }
        let mut log = LogStore::new();
        emit_twice(&mut log);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn spill_then_read_preserves_the_digest() {
        let mut a = LogStore::for_shard(0);
        let mut b = LogStore::for_shard(1);
        for i in 0..200u64 {
            a.append(SimTime::from_secs(3 * i), format!("a{i}"));
            b.append(SimTime::from_secs(3 * i + 1), format!("b{i}"));
        }
        let merged = LogStore::merge([&a, &b]);
        // The in-memory reference digest: hash the same lines directly.
        let mut reference = Fnv1a::new();
        for e in &merged {
            reference.write(format!("{:?}|{:?}\n", e.key, e.record).as_bytes());
        }
        let dir = std::env::temp_dir().join(format!("mhw-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merged.log");
        let spilled = LogStore::spill(merged.iter().copied(), &path).unwrap();
        assert_eq!(spilled.lines, 400);
        assert_eq!(spilled.digest, reference.finish(), "spill digest != in-memory digest");
        let (lines, digest) = read_spilled_digest(&path).unwrap();
        assert_eq!(lines, spilled.lines);
        assert_eq!(digest, spilled.digest, "on-disk re-digest diverged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv_constants_match_the_reference_vectors() {
        // Known FNV-1a test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
