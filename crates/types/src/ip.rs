//! IPv4 addresses and CIDR-style blocks.
//!
//! The simulator models the IPv4 space abstractly: countries own disjoint
//! address blocks (assigned by `mhw-netmodel`), and geolocating an address
//! means finding its covering block. A thin newtype keeps addresses `Copy`
//! and avoids dragging `std::net` semantics (scopes, v6) into log records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IPv4 address as a 32-bit integer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// An address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four dotted-quad octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A contiguous block of IPv4 addresses (`base/prefix_len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IpBlock {
    base: u32,
    prefix_len: u8,
}

impl IpBlock {
    /// Create a block; the base is masked down to the prefix boundary.
    ///
    /// # Panics
    /// Panics if `prefix_len > 32`.
    pub fn new(base: IpAddr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length must be <= 32");
        IpBlock { base: base.0 & Self::mask(prefix_len), prefix_len }
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// The first address of the block.
    pub fn base(self) -> IpAddr {
        IpAddr(self.base)
    }

    /// The CIDR prefix length.
    pub fn prefix_len(self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses in the block.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Whether `ip` falls inside this block.
    pub fn contains(self, ip: IpAddr) -> bool {
        ip.0 & Self::mask(self.prefix_len) == self.base
    }

    /// The `i`-th address of the block (wrapping within the block), used
    /// to hand out deterministic per-host addresses.
    pub fn addr(self, i: u64) -> IpAddr {
        IpAddr(self.base | (i % self.size()) as u32)
    }
}

impl fmt::Display for IpBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", IpAddr(self.base), self.prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let ip = IpAddr::new(203, 0, 113, 42);
        assert_eq!(ip.octets(), [203, 0, 113, 42]);
        assert_eq!(ip.to_string(), "203.0.113.42");
    }

    #[test]
    fn block_masks_base() {
        let b = IpBlock::new(IpAddr::new(10, 1, 2, 3), 16);
        assert_eq!(b.base(), IpAddr::new(10, 1, 0, 0));
        assert_eq!(b.to_string(), "10.1.0.0/16");
        assert_eq!(b.size(), 65536);
    }

    #[test]
    fn contains_respects_boundary() {
        let b = IpBlock::new(IpAddr::new(10, 1, 0, 0), 16);
        assert!(b.contains(IpAddr::new(10, 1, 255, 255)));
        assert!(!b.contains(IpAddr::new(10, 2, 0, 0)));
    }

    #[test]
    fn addr_wraps_in_block() {
        let b = IpBlock::new(IpAddr::new(192, 168, 1, 0), 24);
        assert_eq!(b.addr(0), IpAddr::new(192, 168, 1, 0));
        assert_eq!(b.addr(255), IpAddr::new(192, 168, 1, 255));
        assert_eq!(b.addr(256), IpAddr::new(192, 168, 1, 0)); // wraps
        assert!(b.contains(b.addr(12345)));
    }

    #[test]
    fn zero_and_full_prefix() {
        let whole = IpBlock::new(IpAddr::new(1, 2, 3, 4), 0);
        assert!(whole.contains(IpAddr::new(255, 255, 255, 255)));
        assert_eq!(whole.size(), 1u64 << 32);
        let host = IpBlock::new(IpAddr::new(1, 2, 3, 4), 32);
        assert_eq!(host.size(), 1);
        assert!(host.contains(IpAddr::new(1, 2, 3, 4)));
        assert!(!host.contains(IpAddr::new(1, 2, 3, 5)));
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn oversized_prefix_panics() {
        IpBlock::new(IpAddr::new(0, 0, 0, 0), 33);
    }
}
