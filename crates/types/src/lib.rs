//! # mhw-types
//!
//! Shared domain types for the manual-account-hijacking ecosystem simulator,
//! a reproduction of *"Handcrafted Fraud and Extortion: Manual Account
//! Hijacking in the Wild"* (IMC 2014).
//!
//! Everything in this crate is a plain value type: identifiers, simulated
//! time, email addresses, phone numbers, country codes and IP addresses.
//! Higher-level crates (the mail system, the identity stack, the adversary
//! models, …) build on these so that log records produced in one subsystem
//! can be consumed by the measurement pipeline in another without
//! conversion glue.
//!
//! Design notes:
//! * All identifiers are newtypes over integers so they are `Copy`, cheap
//!   to log, and cannot be confused with one another.
//! * [`SimTime`] is an absolute second count from the simulation epoch.
//!   The epoch is defined to be **Monday 2012-01-02 00:00:00 UTC** so that
//!   calendar arithmetic (weekday / office-hours modelling of hijacker
//!   crews, §5.5 of the paper) is exact and cheap.
//! * No wall-clock types are used anywhere in the workspace: determinism
//!   is a core requirement (same seed ⇒ bit-identical datasets).

#![deny(missing_docs)]

pub mod account;
pub mod actor;
pub mod email;
pub mod error;
pub mod faultspec;
pub mod fnv;
pub mod geo;
pub mod ids;
pub mod intern;
pub mod ip;
pub mod log;
pub mod phone;
pub mod retry;
pub mod sync;
pub mod time;

pub use account::{AccountCategory, WebmailProvider};
pub use actor::Actor;
pub use email::{EmailAddress, EmailDomainClass};
pub use error::{CheckpointOp, EngineError, EngineResult, Error};
pub use fnv::Fnv1a;
pub use geo::{CountryCode, Language};
pub use ids::{
    AccountId, CampaignId, ClaimId, CrewId, DeviceId, FilterId, IncidentId, MessageId, PageId,
    SessionId, UserId,
};
pub use intern::{DenseMap, Interner, Span, StrArena, Sym};
pub use ip::{IpAddr, IpBlock};
pub use log::{
    read_spilled_digest, Entries, Entry, EventSink, LogKey, LogStore, ShardId, SpillFile, Stamped,
};
pub use phone::PhoneNumber;
pub use retry::RetryPolicy;
pub use sync::CachePadded;
pub use time::{SimDuration, SimTime, Weekday, DAY, HOUR, MINUTE, WEEK};
