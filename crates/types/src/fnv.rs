//! FNV-1a — the workspace's one and only digest primitive.
//!
//! Every digest in the workspace — dataset digests, checkpoint state
//! digests, RNG stream labels, spilled-log checksums — is 64-bit
//! FNV-1a. It is stable across platforms and Rust versions (unlike
//! `DefaultHasher`), has no lookup tables or per-hasher allocation, and
//! is cheap enough to run over every log record of a million-user
//! world. This module is the single definition; the incremental
//! [`Fnv1a`] hasher and the free [`fnv1a`]/[`digest`] functions below
//! are the same algorithm in streaming and one-shot form.

/// The FNV-1a 64-bit offset basis (the initial hash state).
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an in-progress FNV-1a hash state. Start from
/// [`OFFSET`]; feeding chunks through repeated calls is identical to
/// one call over the concatenation.
#[must_use]
pub fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One-shot digest of a byte slice: `fnv1a(OFFSET, bytes)`.
#[must_use]
pub fn digest(bytes: &[u8]) -> u64 {
    fnv1a(OFFSET, bytes)
}

/// Incremental FNV-1a hasher — the workspace's standard digest for
/// datasets and state snapshots.
///
/// ```
/// use mhw_types::fnv::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// let once = h.finish();
/// let mut again = Fnv1a::new();
/// again.write(b"hel");
/// again.write(b"lo");
/// assert_eq!(once, again.finish(), "chunking never changes the digest");
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// The FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = OFFSET;
    /// The FNV-1a 64-bit prime.
    pub const PRIME: u64 = PRIME;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET)
    }

    /// Absorb `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a(self.0, bytes);
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(digest(b""), OFFSET);
        assert_eq!(Fnv1a::new().finish(), OFFSET);
    }

    #[test]
    fn published_reference_vectors() {
        // Official FNV-1a 64-bit test vectors (Noll's reference set).
        assert_eq!(digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"handcrafted fraud and extortion";
        let mut h = Fnv1a::new();
        for chunk in data.chunks(3) {
            h.write(chunk);
        }
        assert_eq!(h.finish(), digest(data));
        assert_eq!(fnv1a(fnv1a(OFFSET, &data[..10]), &data[10..]), digest(data));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(digest(b"shard-0"), digest(b"shard-1"));
        assert_ne!(digest(b"ab"), digest(b"ba"), "order matters");
    }
}
