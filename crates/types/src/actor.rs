//! Actor ground truth.
//!
//! Every mutating operation across the ecosystem — mail actions, logins,
//! settings changes — records *who* performed it. This ground truth is
//! used by the measurement pipeline (to label datasets) and by remission
//! (to revert hijacker changes); detection code in `mhw-defense` never
//! reads it, since real defenders do not have it.

use crate::ids::CrewId;
use serde::{Deserialize, Serialize};

/// Who performed an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Actor {
    /// The legitimate account owner.
    Owner,
    /// A manual-hijacking crew operator.
    Hijacker(CrewId),
    /// An automated (botnet) hijacker — the taxonomy baseline.
    Bot,
    /// The provider itself (notifications, anti-abuse actions).
    System,
}

impl Actor {
    /// Whether the actor is any kind of hijacker (manual or automated).
    pub fn is_hijacker(self) -> bool {
        matches!(self, Actor::Hijacker(_) | Actor::Bot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hijacker_classification() {
        assert!(Actor::Hijacker(CrewId(0)).is_hijacker());
        assert!(Actor::Bot.is_hijacker());
        assert!(!Actor::Owner.is_hijacker());
        assert!(!Actor::System.is_hijacker());
    }
}
