//! Account categories and webmail providers.
//!
//! Table 2 of the paper breaks phishing emails and pages down by the
//! *type* of account credential they target; Figure 3 breaks non-blank
//! HTTP referrers down by webmail provider. Both enumerations live here
//! so the phishing substrate (which generates lures) and the analysis
//! crate (which tabulates them) agree on the categories.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of credential a phishing lure asks for — the row dimension of
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccountCategory {
    /// Webmail account credentials (the top target: 35% of emails).
    Mail,
    /// Online banking credentials (21% of emails).
    Bank,
    /// App store credentials (16%).
    AppStore,
    /// Social network credentials (14%).
    SocialNetwork,
    /// Everything else — gaming, e-commerce, ISP portals (14%).
    Other,
}

impl AccountCategory {
    /// Every category, in Figure 5 presentation order.
    pub const ALL: [AccountCategory; 5] = [
        AccountCategory::Mail,
        AccountCategory::Bank,
        AccountCategory::AppStore,
        AccountCategory::SocialNetwork,
        AccountCategory::Other,
    ];

    /// Label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            AccountCategory::Mail => "Mail",
            AccountCategory::Bank => "Bank",
            AccountCategory::AppStore => "App Store",
            AccountCategory::SocialNetwork => "Social network",
            AccountCategory::Other => "Other",
        }
    }
}

impl fmt::Display for AccountCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Webmail providers observed in the HTTP-referrer breakdown (Figure 3).
///
/// Names are genericized: the simulated ecosystem's own provider plays the
/// role Gmail plays in the paper; the others are independent webmail and
/// web properties whose referrers appear on phishing-page traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WebmailProvider {
    /// Aggregate of small webmail systems ("Webmail Generic" in Fig 3).
    GenericWebmail,
    /// A large independent webmail provider (Yahoo's role).
    YahooLike,
    /// Unclassified other referrers.
    OtherReferrer,
    /// The simulated provider itself (Gmail's role). Its referrers only
    /// leak via a legacy HTML frontend used by old phones (§4.2).
    HomeProvider,
    /// A search/portal company's webmail (Google-other properties).
    PortalProperties,
    /// A large software company's webmail (Microsoft's role).
    MicrosoftLike,
    /// A legacy dial-up era provider (AOL's role).
    AolLike,
    /// An anti-phishing clearinghouse crawling reported pages (PhishTank's role).
    PhishClearinghouse,
    /// A social network (Facebook's role).
    SocialNetworkSite,
    /// A regional search engine's webmail (Yandex's role).
    RegionalSearchMail,
}

impl WebmailProvider {
    /// In the order Figure 3 lists them (top to bottom).
    pub const ALL: [WebmailProvider; 10] = [
        WebmailProvider::GenericWebmail,
        WebmailProvider::YahooLike,
        WebmailProvider::OtherReferrer,
        WebmailProvider::HomeProvider,
        WebmailProvider::PortalProperties,
        WebmailProvider::MicrosoftLike,
        WebmailProvider::AolLike,
        WebmailProvider::PhishClearinghouse,
        WebmailProvider::SocialNetworkSite,
        WebmailProvider::RegionalSearchMail,
    ];

    /// Human-readable label used in figure renderings.
    pub fn label(self) -> &'static str {
        match self {
            WebmailProvider::GenericWebmail => "Webmail Generic",
            WebmailProvider::YahooLike => "Yahoo-like",
            WebmailProvider::OtherReferrer => "Other",
            WebmailProvider::HomeProvider => "Home provider (legacy frontend)",
            WebmailProvider::PortalProperties => "Portal properties",
            WebmailProvider::MicrosoftLike => "Microsoft-like",
            WebmailProvider::AolLike => "AOL-like",
            WebmailProvider::PhishClearinghouse => "Phish clearinghouse",
            WebmailProvider::SocialNetworkSite => "Social network",
            WebmailProvider::RegionalSearchMail => "Regional search mail",
        }
    }
}

impl fmt::Display for WebmailProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn five_table2_categories() {
        assert_eq!(AccountCategory::ALL.len(), 5);
        let set: HashSet<_> = AccountCategory::ALL.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(AccountCategory::Mail.label(), "Mail");
        assert_eq!(AccountCategory::AppStore.label(), "App Store");
        assert_eq!(AccountCategory::SocialNetwork.to_string(), "Social network");
    }

    #[test]
    fn ten_referrer_sources() {
        // Figure 3 lists ten referrer sources.
        assert_eq!(WebmailProvider::ALL.len(), 10);
        let set: HashSet<_> = WebmailProvider::ALL.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn categories_are_ordered_for_stable_tabulation() {
        let mut v = [AccountCategory::Other, AccountCategory::Mail];
        v.sort();
        assert_eq!(v[0], AccountCategory::Mail);
    }
}
