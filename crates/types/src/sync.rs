//! Concurrency-layout primitives shared across the workspace.
//!
//! The sharded engine hands each worker thread its own slice of hot
//! state — an ecosystem slot, a per-shard metrics registry — and those
//! slots are bumped millions of times per simulated day. When two
//! shards' hot words land on the same cache line, every relaxed atomic
//! increment on one core invalidates the line on every other core
//! ("false sharing"), and adding workers makes the run *slower*.
//! [`CachePadded`] is the fix: it aligns its contents to a 128-byte
//! boundary and rounds the value's footprint up to a whole number of
//! lines, so no two padded values ever share one.
//!
//! 128 bytes rather than 64 because recent x86-64 parts prefetch cache
//! lines in adjacent pairs and Apple/ARM big cores use 128-byte lines
//! outright — the same constant crossbeam and tokio settled on.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so it never shares a cache
/// line with a neighbouring value.
///
/// Derefs to `T`, so a padded atomic or mutex is used exactly like an
/// unpadded one:
///
/// ```
/// use mhw_types::CachePadded;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let slots: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// slots[1].fetch_add(3, Ordering::Relaxed);
/// assert_eq!(slots[1].load(Ordering::Relaxed), 3);
/// assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 128);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to its own cache line(s).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.value.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn padded_values_occupy_distinct_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let pair = [CachePadded::new(AtomicU64::new(0)), CachePadded::new(AtomicU64::new(0))];
        let a = &*pair[0] as *const AtomicU64 as usize;
        let b = &*pair[1] as *const AtomicU64 as usize;
        assert!(b - a >= 128, "adjacent padded slots must be a line apart");
    }

    #[test]
    fn deref_and_into_inner_roundtrip() {
        let mut padded = CachePadded::new(41u32);
        *padded += 1;
        assert_eq!(*padded, 42);
        assert_eq!(padded.into_inner(), 42);
        assert_eq!(format!("{:?}", CachePadded::new(7)), "7");
    }
}
