//! Typed errors for the crash-safe engine.
//!
//! Everything that can go wrong on a *non-programmer-error* path —
//! a shard job panicking mid-day, checkpoint I/O failing, a checkpoint
//! file arriving corrupt or from a different scenario, an invalid
//! run configuration — is represented here so callers can match on the
//! failure instead of losing the whole process to a panic. Genuine
//! invariant violations (index out of bounds, arithmetic bugs) still
//! panic; the engine catches those at the worker-pool boundary and
//! reports them as [`EngineError::ShardPanicked`].

use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Workspace-wide error alias: today every fallible public path is an
/// engine path, so [`Error`] *is* [`EngineError`]; downstream code that
/// names `mhw_types::Error` keeps compiling if the hierarchy grows.
pub type Error = EngineError;

/// The checkpoint I/O operation that failed (part of
/// [`EngineError::CheckpointIo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointOp {
    /// Writing (or atomically renaming) a checkpoint file.
    Write,
    /// Reading a checkpoint file back.
    Read,
    /// Scanning a checkpoint directory for the latest file.
    List,
}

impl fmt::Display for CheckpointOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckpointOp::Write => "write",
            CheckpointOp::Read => "read",
            CheckpointOp::List => "list",
        })
    }
}

/// Every way a sharded engine run can fail without it being a bug in
/// the caller's own code.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A shard job panicked mid-run. The panic was caught at the worker
    /// pool boundary; other shards drained cleanly and their partial
    /// logs survive for post-mortem.
    ShardPanicked {
        /// The logical shard whose job panicked.
        shard: crate::log::ShardId,
        /// The simulation day being executed (0 if the panic happened
        /// while the shard world was still being built).
        day: u64,
        /// The panic payload, stringified (`&str`/`String` payloads are
        /// preserved verbatim).
        payload: String,
    },
    /// Checkpoint I/O failed after exhausting the bounded retries.
    CheckpointIo {
        /// Which operation failed.
        op: CheckpointOp,
        /// The file or directory involved.
        path: String,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// A checkpoint file was structurally invalid: bad magic, unknown
    /// version, truncated body, or checksum mismatch.
    CheckpointCorrupt {
        /// The file that was rejected.
        path: String,
        /// What exactly was wrong with it.
        reason: String,
    },
    /// A structurally valid checkpoint does not belong to this run:
    /// the scenario fingerprint differs, or the state recomputed during
    /// resume replay diverged from the recorded digests.
    CheckpointMismatch {
        /// The checkpoint file involved.
        path: String,
        /// The field that disagreed (e.g. `seed`, `shard 2 state digest`).
        field: String,
        /// The value recorded in the checkpoint.
        expected: String,
        /// The value observed in this run.
        found: String,
    },
    /// The run configuration is invalid (zero checkpoint interval, a
    /// fault plan addressing a day/shard outside the scenario, …).
    InvalidConfig {
        /// Human-readable description of the invalid setting.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardPanicked { shard, day, payload } => {
                write!(f, "shard {shard} panicked on day {day}: {payload}")
            }
            EngineError::CheckpointIo { op, path, detail } => {
                write!(f, "checkpoint {op} failed for {path}: {detail}")
            }
            EngineError::CheckpointCorrupt { path, reason } => {
                write!(f, "corrupt checkpoint {path}: {reason}")
            }
            EngineError::CheckpointMismatch { path, field, expected, found } => {
                write!(
                    f,
                    "checkpoint {path} does not match this run: {field} \
                     (checkpoint has {expected}, run has {found})"
                )
            }
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::ShardPanicked { shard: 3, day: 7, payload: "boom".into() };
        let s = e.to_string();
        assert!(s.contains("shard 3"));
        assert!(s.contains("day 7"));
        assert!(s.contains("boom"));

        let e = EngineError::CheckpointIo {
            op: CheckpointOp::Write,
            path: "/tmp/x".into(),
            detail: "disk full".into(),
        };
        assert!(e.to_string().contains("write"));
        assert!(e.to_string().contains("disk full"));

        let e = EngineError::CheckpointMismatch {
            path: "ckpt".into(),
            field: "seed".into(),
            expected: "1".into(),
            found: "2".into(),
        };
        assert!(e.to_string().contains("seed"));
    }

    #[test]
    fn errors_are_matchable_values() {
        let e: Error = EngineError::InvalidConfig { reason: "x".into() };
        assert!(matches!(e, EngineError::InvalidConfig { .. }));
        let r: EngineResult<()> =
            Err(EngineError::CheckpointCorrupt { path: "p".into(), reason: "r".into() });
        assert!(r.is_err());
    }
}
