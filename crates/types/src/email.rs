//! Email addresses and domain classes.
//!
//! Figure 4 of the paper breaks phished addresses down by TLD (finding
//! `.edu` overwhelmingly dominant), and §4.2 explains the skew via spam
//! filtering quality: self-hosted domains (universities) let far more lure
//! mail through than large webmail providers. [`EmailDomainClass`]
//! captures that distinction so the population model can assign addresses
//! and the phishing model can modulate delivery rates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How an address's mail domain is operated — the property that §4.2
/// identifies as controlling spam-filter quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmailDomainClass {
    /// A large webmail provider with industrial spam filtering
    /// (the simulated provider itself, or Yahoo/Hotmail-alikes).
    MajorWebmail,
    /// A university or similar self-hosted domain with commodity
    /// filtering; per Kanich et al. (cited in §4.2), spam delivery is
    /// roughly 10× higher here.
    SelfHostedEdu,
    /// Small businesses / vanity domains with commodity filtering.
    SelfHostedOther,
}

impl EmailDomainClass {
    /// Relative lure-mail delivery multiplier versus a major webmail
    /// provider (§4.2's "10 times higher" observation for commodity
    /// filtering).
    pub fn spam_delivery_multiplier(self) -> f64 {
        match self {
            EmailDomainClass::MajorWebmail => 1.0,
            EmailDomainClass::SelfHostedEdu => 10.0,
            EmailDomainClass::SelfHostedOther => 8.0,
        }
    }
}

/// A structured email address: `local@domain`, where the final dot-label
/// of the domain is the TLD used in Figure 4's breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EmailAddress {
    local: String,
    domain: String,
}

impl EmailAddress {
    /// Build an address from parts. Both parts are lower-cased; the
    /// simulator treats addresses case-insensitively like real MTAs treat
    /// domains (and like Gmail treats locals).
    pub fn new(local: impl Into<String>, domain: impl Into<String>) -> Self {
        EmailAddress {
            local: local.into().to_ascii_lowercase(),
            domain: domain.into().to_ascii_lowercase(),
        }
    }

    /// Parse `local@domain`. Returns `None` unless there is exactly one
    /// `@` with non-empty parts and a dotted domain.
    pub fn parse(s: &str) -> Option<Self> {
        let (local, domain) = s.split_once('@')?;
        if local.is_empty() || domain.is_empty() || domain.contains('@') {
            return None;
        }
        if !domain.contains('.') || domain.starts_with('.') || domain.ends_with('.') {
            return None;
        }
        Some(EmailAddress::new(local, domain))
    }

    /// The local part (before the `@`).
    pub fn local(&self) -> &str {
        &self.local
    }

    /// The domain part (after the `@`).
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The top-level domain (final label), e.g. `edu` for
    /// `alice@cs.example.edu`. This is the unit of Figure 4.
    pub fn tld(&self) -> &str {
        self.domain.rsplit('.').next().unwrap_or(&self.domain)
    }

    /// A crude similarity used by the doppelganger model (§5.4): same
    /// local part on a different domain, or a local part within edit
    /// distance 1 on the same domain, "looks reasonably similar from the
    /// point of view of the victims".
    pub fn is_plausible_doppelganger_of(&self, victim: &EmailAddress) -> bool {
        if self == victim {
            return false;
        }
        if self.local == victim.local && self.domain != victim.domain {
            return true;
        }
        self.domain == victim.domain && edit_distance_at_most_one(&self.local, &victim.local)
    }
}

impl fmt::Display for EmailAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.local, self.domain)
    }
}

/// True iff `a` and `b` differ by at most one insertion, deletion, or
/// substitution — the "difficult-to-detect typo" of §5.4.
fn edit_distance_at_most_one(a: &str, b: &str) -> bool {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (la, lb) = (a.len(), b.len());
    if la.abs_diff(lb) > 1 {
        return false;
    }
    if la == lb {
        // Zero or one substitution.
        return a.iter().zip(&b).filter(|(x, y)| x != y).count() <= 1;
    }
    // One insertion/deletion: align the longer against the shorter.
    let (long, short) = if la > lb { (&a, &b) } else { (&b, &a) };
    let mut skipped = false;
    let (mut i, mut j) = (0usize, 0usize);
    while i < long.len() && j < short.len() {
        if long[i] == short[j] {
            i += 1;
            j += 1;
        } else if skipped {
            return false;
        } else {
            skipped = true;
            i += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_normal_addresses() {
        let a = EmailAddress::parse("Alice.Smith@Example.COM").unwrap();
        assert_eq!(a.local(), "alice.smith");
        assert_eq!(a.domain(), "example.com");
        assert_eq!(a.tld(), "com");
        assert_eq!(a.to_string(), "alice.smith@example.com");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "nodomain", "@x.com", "a@", "a@@b.com", "a@nodot", "a@.com", "a@com."] {
            assert!(EmailAddress::parse(bad).is_none(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn tld_is_last_label() {
        let a = EmailAddress::new("x", "mail.cs.uni.edu");
        assert_eq!(a.tld(), "edu");
    }

    #[test]
    fn doppelganger_same_local_other_provider() {
        // The paper's own example: same username, different provider.
        let victim = EmailAddress::new("victim.name", "gmail.example");
        let dopp = EmailAddress::new("victim.name", "aol.example");
        assert!(dopp.is_plausible_doppelganger_of(&victim));
    }

    #[test]
    fn doppelganger_typo_same_provider() {
        let victim = EmailAddress::new("victimname", "gmail.example");
        let dopp = EmailAddress::new("victimnarne", "gmail.example"); // not edit distance 1
        assert!(!dopp.is_plausible_doppelganger_of(&victim));
        let dopp2 = EmailAddress::new("victimnam", "gmail.example"); // one deletion
        assert!(dopp2.is_plausible_doppelganger_of(&victim));
        let dopp3 = EmailAddress::new("victimnames", "gmail.example"); // one insertion
        assert!(dopp3.is_plausible_doppelganger_of(&victim));
        let dopp4 = EmailAddress::new("victimnome", "gmail.example"); // one substitution
        assert!(dopp4.is_plausible_doppelganger_of(&victim));
    }

    #[test]
    fn identical_address_is_not_its_own_doppelganger() {
        let a = EmailAddress::new("x", "y.com");
        assert!(!a.clone().is_plausible_doppelganger_of(&a));
    }

    #[test]
    fn unrelated_addresses_are_not_doppelgangers() {
        let victim = EmailAddress::new("alice", "gmail.example");
        let other = EmailAddress::new("bob", "aol.example");
        assert!(!other.is_plausible_doppelganger_of(&victim));
    }

    #[test]
    fn edit_distance_helper() {
        assert!(edit_distance_at_most_one("abc", "abc"));
        assert!(edit_distance_at_most_one("abc", "abd"));
        assert!(edit_distance_at_most_one("abc", "ab"));
        assert!(edit_distance_at_most_one("abc", "abcd"));
        assert!(!edit_distance_at_most_one("abc", "ade"));
        assert!(!edit_distance_at_most_one("abc", "a"));
        assert!(edit_distance_at_most_one("", "a"));
        assert!(!edit_distance_at_most_one("", "ab"));
    }

    #[test]
    fn delivery_multipliers_ordering() {
        // §4.2: commodity filtering lets ~10x more spam through.
        assert!(
            EmailDomainClass::SelfHostedEdu.spam_delivery_multiplier()
                > EmailDomainClass::MajorWebmail.spam_delivery_multiplier()
        );
        assert_eq!(EmailDomainClass::SelfHostedEdu.spam_delivery_multiplier(), 10.0);
    }
}
