//! Shared grammar for deterministic fault-plan CLI specs.
//!
//! Two fault schedules live in the workspace — the engine's `FaultPlan`
//! (shard panics, slow workers, checkpoint failures) and the serve
//! tier's `ServeFaultPlan` (signal-source outages, slow signals, cache
//! wipes). Both speak the same spec family:
//!
//! * explicit, comma-separated `kind@coordinates` entries, e.g.
//!   `panic@3.1,slow@2.0:25` or `geo-down@100..400,cache-wipe@250`;
//! * `seeded:key=N,key=N` count maps, expanded by the consumer from the
//!   run's master seed.
//!
//! This module owns the tokenising and the error wording so the two
//! plans cannot drift apart: entries are split here, coordinate parsing
//! uses the helpers here, and every error is a plain string naming the
//! offending entry. The CLIs map those strings to usage errors
//! (exit code 2) via `mhw_experiments::cli::UsageError`.

use std::collections::BTreeMap;

/// A parsed spec: either a seeded count map or explicit entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// `seeded:key=N,…` — counts per fault kind, to be expanded by the
    /// consumer from the run seed.
    Seeded(SeededCounts),
    /// Explicit `kind@coordinates` entries, in spec order.
    Explicit(Vec<FaultEntry>),
}

/// Counts parsed from the `seeded:` form, keyed by fault kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeededCounts(BTreeMap<String, u64>);

impl SeededCounts {
    /// The count for a kind (0 when the key was not given).
    pub fn get(&self, key: &str) -> u64 {
        self.0.get(key).copied().unwrap_or(0)
    }
}

/// One explicit entry: the text before `@`, the text after, and the
/// full entry for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEntry {
    /// The fault kind (text before `@`). Validated by the consumer,
    /// which knows its own kind vocabulary.
    pub kind: String,
    /// The coordinate text after `@`, parsed with the helpers below.
    pub coords: String,
    /// The whole entry as written, for error messages.
    pub raw: String,
}

/// Tokenise a fault spec into its seeded or explicit form.
///
/// `allowed_seeded_keys` is the consumer's kind vocabulary for the
/// `seeded:` form; an unknown key is rejected here with an error that
/// lists the allowed ones. Explicit entry *kinds* are not validated
/// here (use [`unknown_kind`] for that) — only the `kind@coords` shape.
pub fn parse(spec: &str, allowed_seeded_keys: &[&str]) -> Result<FaultSpec, String> {
    let spec = spec.trim();
    if let Some(counts) = spec.strip_prefix("seeded:") {
        let mut map = BTreeMap::new();
        for pair in counts.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{pair}`: expected key=N"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault spec `{pair}`: `{value}` is not a count"))?;
            let key = key.trim();
            if !allowed_seeded_keys.contains(&key) {
                return Err(format!(
                    "fault spec key `{key}`: expected {}",
                    join_or(allowed_seeded_keys)
                ));
            }
            *map.entry(key.to_string()).or_insert(0) += n;
        }
        return Ok(FaultSpec::Seeded(SeededCounts(map)));
    }
    let mut entries = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (kind, coords) = entry
            .split_once('@')
            .ok_or_else(|| format!("fault entry `{entry}`: expected kind@coordinates"))?;
        entries.push(FaultEntry {
            kind: kind.to_string(),
            coords: coords.to_string(),
            raw: entry.to_string(),
        });
    }
    Ok(FaultSpec::Explicit(entries))
}

/// The standard error for an explicit entry whose kind is not in the
/// consumer's vocabulary.
pub fn unknown_kind(kind: &str, expected: &[&str]) -> String {
    format!("fault kind `{kind}`: expected {}", join_or(expected))
}

/// Parse a number inside `entry`, naming the entry and the expected
/// shape on failure.
pub fn num(entry: &str, text: &str, what: &str) -> Result<u64, String> {
    text.trim()
        .parse::<u64>()
        .map_err(|_| format!("fault entry `{entry}`: `{text}` is not a {what}"))
}

/// Split a coordinate on `sep` into exactly two parts, naming the
/// entry and the expected shape on failure.
pub fn split2<'a>(
    entry: &str,
    text: &'a str,
    sep: char,
    expected: &str,
) -> Result<(&'a str, &'a str), String> {
    text.split_once(sep)
        .ok_or_else(|| format!("fault entry `{entry}`: expected {expected}"))
}

/// Parse a half-open `START..END` range, requiring `START < END`.
pub fn range(entry: &str, text: &str) -> Result<(u64, u64), String> {
    let (start, end) = text
        .split_once("..")
        .ok_or_else(|| format!("fault entry `{entry}`: expected START..END range"))?;
    let start = num(entry, start, "range start")?;
    let end = num(entry, end, "range end")?;
    if start >= end {
        return Err(format!(
            "fault entry `{entry}`: empty range {start}..{end} (need START < END)"
        ));
    }
    Ok((start, end))
}

/// `"a, b or c"` — the list style used by the error messages.
fn join_or(items: &[&str]) -> String {
    match items {
        [] => String::new(),
        [only] => (*only).to_string(),
        [head @ .., last] => format!("{} or {last}", head.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_form_parses_counts() {
        let spec = parse("seeded:panics=2,slow=1", &["panics", "slow", "ckpt"]).unwrap();
        let FaultSpec::Seeded(counts) = spec else {
            panic!("expected seeded form")
        };
        assert_eq!(counts.get("panics"), 2);
        assert_eq!(counts.get("slow"), 1);
        assert_eq!(counts.get("ckpt"), 0, "missing keys default to zero");
    }

    #[test]
    fn explicit_form_splits_kind_and_coords() {
        let spec = parse("panic@3.1, slow@2.0:25", &[]).unwrap();
        let FaultSpec::Explicit(entries) = spec else {
            panic!("expected explicit form")
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "panic");
        assert_eq!(entries[0].coords, "3.1");
        assert_eq!(entries[1].raw, "slow@2.0:25");
    }

    #[test]
    fn errors_name_the_offending_entry() {
        let err = parse("panic-no-coords", &[]).unwrap_err();
        assert!(err.contains("panic-no-coords"), "{err}");
        let err = parse("seeded:panics=many", &["panics"]).unwrap_err();
        assert!(err.contains("many"), "{err}");
        let err = parse("seeded:explode=1", &["panics", "slow", "ckpt"]).unwrap_err();
        assert!(err.contains("explode"), "{err}");
        assert!(err.contains("panics, slow or ckpt"), "{err}");
        assert_eq!(num("slow@x", "x", "day").unwrap_err(), "fault entry `slow@x`: `x` is not a day");
        assert_eq!(
            unknown_kind("explode", &["panic", "slow", "ckpt-fail"]),
            "fault kind `explode`: expected panic, slow or ckpt-fail"
        );
    }

    #[test]
    fn ranges_are_half_open_and_nonempty() {
        assert_eq!(range("geo-down@5..9", "5..9").unwrap(), (5, 9));
        let err = range("geo-down@9..5", "9..5").unwrap_err();
        assert!(err.contains("9..5"), "{err}");
        let err = range("geo-down@7", "7").unwrap_err();
        assert!(err.contains("START..END"), "{err}");
    }

    #[test]
    fn empty_specs_yield_empty_plans() {
        assert_eq!(parse("", &[]).unwrap(), FaultSpec::Explicit(Vec::new()));
        let FaultSpec::Seeded(counts) = parse("seeded:", &["x"]).unwrap() else {
            panic!("expected seeded form")
        };
        assert_eq!(counts.get("x"), 0);
    }
}
