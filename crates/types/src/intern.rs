//! Dense interning for the hot data layer.
//!
//! At paper scale (millions of accounts) the simulator cannot afford a
//! heap-allocated `String` per password, a `HashMap<EmailAddress, _>`
//! probe per delivered message, or a hash-map entry per account of
//! defense history. This module provides the three primitives the rest
//! of the workspace uses to keep per-entity state dense and index-addressed:
//!
//! * [`Interner<T>`] — deduplicating value → dense-`u32` symbol table.
//!   The mail provider interns every [`crate::EmailAddress`] it creates,
//!   so address → account resolution is one probe against a table whose
//!   symbols are exactly the dense account indices.
//! * [`StrArena`] — append-only string storage handing out [`Span`]
//!   handles. One allocation amortized over every password in the world
//!   instead of one `String` per credential.
//! * [`DenseMap<V>`] — a map keyed by dense `u32` indices (any id made
//!   by `define_id!`, or an interner symbol) that stores values in a
//!   `Vec` while tolerating sparse/namespaced keys via an overflow map.
//!
//! Everything here is deterministic: symbols and spans are allocated in
//! insertion order, so two runs that intern the same values in the same
//! order produce identical indices — a requirement for the engine's
//! byte-identical-digest contract.

use std::collections::HashMap;
use std::hash::Hash;
use std::marker::PhantomData;

/// A dense symbol naming one interned value of type `T`.
///
/// Symbols are plain `u32` indices under the hood: `Copy`, 4 bytes,
/// and usable directly as a `Vec` index for side tables keyed by the
/// interned value. The phantom type parameter keeps symbols from
/// different interners (addresses vs. subjects, say) from mixing.
#[derive(Debug)]
pub struct Sym<T>(u32, PhantomData<fn() -> T>);

// Manual impls: derived ones would bound on `T: Copy` etc., but a
// symbol is always copyable regardless of what it names.
impl<T> Clone for Sym<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Sym<T> {}
impl<T> PartialEq for Sym<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<T> Eq for Sym<T> {}
impl<T> PartialOrd for Sym<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Sym<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}
impl<T> Hash for Sym<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl<T> Sym<T> {
    /// Construct from a dense index (the inverse of [`Sym::index`]).
    pub const fn from_index(i: usize) -> Self {
        Sym(i as u32, PhantomData)
    }

    /// Dense index for `Vec`-backed side tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating value → dense-symbol table.
///
/// Symbols are handed out in insertion order starting at 0, so the
/// `n`-th distinct value interned gets symbol index `n` — two runs
/// interning the same sequence of values agree on every symbol, which
/// is what lets interned indices appear inside digested log records.
///
/// ```
/// use mhw_types::intern::Interner;
///
/// let mut names = Interner::new();
/// let alice = names.intern("alice".to_string());
/// let bob = names.intern("bob".to_string());
/// assert_eq!(names.intern("alice".to_string()), alice); // dedup hit
/// assert_eq!(alice.index(), 0);
/// assert_eq!(bob.index(), 1);
/// assert_eq!(names.resolve(bob), "bob");
/// assert_eq!(names.lookup(&"alice".to_string()), Some(alice));
/// assert_eq!(names.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner<T: Eq + Hash + Clone> {
    values: Vec<T>,
    index: HashMap<T, u32>,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner { values: Vec::new(), index: HashMap::new() }
    }

    /// An empty interner pre-sized for `n` distinct values.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            values: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
        }
    }

    /// Intern `value`, returning its symbol — the existing one on a
    /// dedup hit, the next dense index otherwise.
    pub fn intern(&mut self, value: T) -> Sym<T> {
        if let Some(&i) = self.index.get(&value) {
            return Sym(i, PhantomData);
        }
        let i = u32::try_from(self.values.len()).expect("interner overflow: > u32::MAX symbols");
        self.values.push(value.clone());
        self.index.insert(value, i);
        Sym(i, PhantomData)
    }

    /// The symbol for `value` if it has been interned.
    pub fn lookup(&self, value: &T) -> Option<Sym<T>> {
        self.index.get(value).map(|&i| Sym(i, PhantomData))
    }

    /// The value a symbol names. Panics if `sym` came from a different
    /// interner (index out of range).
    pub fn resolve(&self, sym: Sym<T>) -> &T {
        &self.values[sym.index()]
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interned values in symbol order (symbol `i` names the `i`-th
    /// element).
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

/// Handle into a [`StrArena`]: byte offset + length of one stored string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    start: u32,
    len: u32,
}

impl Span {
    /// Length in bytes of the spanned string.
    pub const fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the span covers the empty string.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Append-only string arena.
///
/// All strings live in one growable byte buffer; [`Span`] handles are
/// 8-byte `Copy` values, so a million passwords cost one allocation
/// (amortized) instead of a million. Strings are never freed or moved —
/// spans stay valid for the arena's lifetime.
///
/// ```
/// use mhw_types::intern::StrArena;
///
/// let mut arena = StrArena::new();
/// let hunter2 = arena.push("hunter2");
/// let empty = arena.push("");
/// assert_eq!(arena.get(hunter2), "hunter2");
/// assert_eq!(arena.get(empty), "");
/// assert_eq!(arena.bytes(), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StrArena {
    buf: String,
}

impl StrArena {
    /// An empty arena.
    pub fn new() -> Self {
        StrArena { buf: String::new() }
    }

    /// An empty arena pre-sized for `bytes` of string data.
    pub fn with_capacity(bytes: usize) -> Self {
        StrArena { buf: String::with_capacity(bytes) }
    }

    /// Store a copy of `s`, returning its span.
    pub fn push(&mut self, s: &str) -> Span {
        let start = u32::try_from(self.buf.len()).expect("arena overflow: > 4 GiB of strings");
        let len = u32::try_from(s.len()).expect("arena string > 4 GiB");
        self.buf.push_str(s);
        Span { start, len }
    }

    /// The string a span covers.
    pub fn get(&self, span: Span) -> &str {
        &self.buf[span.start as usize..span.start as usize + span.len as usize]
    }

    /// Total bytes of string data stored.
    pub fn bytes(&self) -> usize {
        self.buf.len()
    }
}

/// A map keyed by dense `u32` indices with `Vec`-backed storage.
///
/// The common case — keys allocated densely from 0 (account ids, user
/// ids, interner symbols) — costs one bounds check and no hashing.
/// Sparse keys (a shard-namespaced message id with a shard tag in the
/// high byte, or an isolated far-out key) transparently land in an
/// overflow hash map rather than forcing a multi-gigabyte `Vec`: a key
/// is only admitted to the dense `Vec` when it extends the populated
/// region by at most [`DenseMap::DENSE_SLACK`] slots (or falls inside a
/// [`DenseMap::with_dense_capacity`] pre-sizing), and never at or past
/// [`DenseMap::DENSE_LIMIT`].
///
/// ```
/// use mhw_types::intern::DenseMap;
///
/// let mut seen: DenseMap<&'static str> = DenseMap::new();
/// seen.insert(2, "two");
/// seen.insert(0xFF00_0001, "sparse"); // far past the dense region
/// assert_eq!(seen.get(2), Some(&"two"));
/// assert_eq!(seen.get(3), None);
/// assert_eq!(seen.get(0xFF00_0001), Some(&"sparse"));
/// assert_eq!(seen.remove(2), Some("two"));
/// assert_eq!(seen.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DenseMap<V> {
    dense: Vec<Option<V>>,
    /// Keys the dense-admission policy rejected.
    overflow: HashMap<u32, V>,
    /// Keys below this are always dense-admitted (set by
    /// [`DenseMap::with_dense_capacity`]).
    dense_floor: usize,
    present: usize,
}

impl<V> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap::new()
    }
}

impl<V> DenseMap<V> {
    /// Hard ceiling on the dense `Vec`; keys at or above always land in
    /// the overflow map. 2^24 entries ≈ the largest id namespace one
    /// shard allocates before the engine's shard tag kicks in.
    pub const DENSE_LIMIT: u32 = 1 << 24;

    /// How far past the current dense end a key may extend the `Vec`.
    /// Densely allocated ids grow the region smoothly; an isolated
    /// sparse key (say, 4 million on an empty map) goes to overflow
    /// instead of materializing millions of empty slots.
    pub const DENSE_SLACK: usize = 1024;

    /// An empty map.
    pub fn new() -> Self {
        DenseMap { dense: Vec::new(), overflow: HashMap::new(), dense_floor: 0, present: 0 }
    }

    /// An empty map that admits keys `0..n` to the dense region
    /// unconditionally (use when the population size is known up front).
    pub fn with_dense_capacity(n: usize) -> Self {
        DenseMap {
            dense: Vec::with_capacity(n),
            overflow: HashMap::new(),
            dense_floor: n,
            present: 0,
        }
    }

    /// Dense-admission policy: below the hard limit, and either inside
    /// the pre-sized floor or within [`Self::DENSE_SLACK`] of the
    /// current dense end.
    fn admits_dense(&self, key: u32) -> bool {
        key < Self::DENSE_LIMIT
            && (key as usize) < self.dense.len().max(self.dense_floor) + Self::DENSE_SLACK
    }

    /// Insert or replace the value at `key`, returning the previous one.
    pub fn insert(&mut self, key: u32, value: V) -> Option<V> {
        if self.admits_dense(key) {
            let i = key as usize;
            if i >= self.dense.len() {
                self.dense.resize_with(i + 1, || None);
            }
            // The key may be stranded in overflow from before the dense
            // region grew out to cover it.
            let prev = self.dense[i].replace(value).or_else(|| self.overflow.remove(&key));
            if prev.is_none() {
                self.present += 1;
            }
            prev
        } else {
            let prev = self.overflow.insert(key, value);
            if prev.is_none() {
                self.present += 1;
            }
            prev
        }
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: u32) -> Option<&V> {
        match self.dense.get(key as usize) {
            Some(Some(v)) => Some(v),
            _ => self.overflow.get(&key),
        }
    }

    /// Mutable access to the value at `key`, if present.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut V> {
        let i = key as usize;
        if i < self.dense.len() && self.dense[i].is_some() {
            return self.dense[i].as_mut();
        }
        self.overflow.get_mut(&key)
    }

    /// Remove and return the value at `key`.
    pub fn remove(&mut self, key: u32) -> Option<V> {
        let prev = self
            .dense
            .get_mut(key as usize)
            .and_then(|slot| slot.take())
            .or_else(|| self.overflow.remove(&key));
        if prev.is_some() {
            self.present -= 1;
        }
        prev
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.present
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.present == 0
    }

    /// Iterator over present values, dense region first (in key order),
    /// then overflow entries (unordered).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.dense.iter().filter_map(|slot| slot.as_ref()).chain(self.overflow.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_round_trips_and_dedups() {
        let mut i: Interner<String> = Interner::new();
        let a = i.intern("a".into());
        let b = i.intern("b".into());
        let a2 = i.intern("a".into());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_symbols_are_dense_in_insertion_order() {
        // The determinism contract: symbol index == insertion rank of
        // the distinct value, regardless of what was interned between.
        let mut i: Interner<u64> = Interner::new();
        let order = [10u64, 7, 10, 3, 7, 99];
        let syms: Vec<usize> = order.iter().map(|&v| i.intern(v).index()).collect();
        assert_eq!(syms, vec![0, 1, 0, 2, 1, 3]);
        assert_eq!(i.values(), &[10, 7, 3, 99]);
        // A second interner fed the same sequence agrees exactly.
        let mut j: Interner<u64> = Interner::new();
        let again: Vec<usize> = order.iter().map(|&v| j.intern(v).index()).collect();
        assert_eq!(syms, again);
    }

    #[test]
    fn interner_lookup_without_insert() {
        let mut i: Interner<String> = Interner::new();
        assert_eq!(i.lookup(&"x".to_string()), None);
        let x = i.intern("x".into());
        assert_eq!(i.lookup(&"x".to_string()), Some(x));
        assert_eq!(i.len(), 1, "lookup must not intern");
    }

    #[test]
    fn arena_spans_are_stable_across_growth() {
        let mut arena = StrArena::with_capacity(4); // force reallocation
        let spans: Vec<Span> = (0..100).map(|n| arena.push(&format!("pw-{n}"))).collect();
        for (n, span) in spans.iter().enumerate() {
            assert_eq!(arena.get(*span), format!("pw-{n}"));
        }
    }

    #[test]
    fn dense_map_spans_dense_and_overflow_regions() {
        let mut m: DenseMap<u64> = DenseMap::new();
        assert!(m.is_empty());
        m.insert(0, 100);
        m.insert(5, 105);
        let sparse = DenseMap::<u64>::DENSE_LIMIT + 7;
        m.insert(sparse, 999);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0), Some(&100));
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(sparse), Some(&999));
        *m.get_mut(5).unwrap() += 1;
        assert_eq!(m.get(5), Some(&106));
        assert_eq!(m.remove(5), Some(106));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dense_map_rejects_isolated_sparse_keys() {
        // An isolated far-out key on an empty map must not materialize
        // millions of empty dense slots.
        let mut m: DenseMap<u8> = DenseMap::new();
        m.insert(4_000_000, 1);
        assert!(m.dense.is_empty(), "sparse key must overflow, not grow the Vec");
        assert_eq!(m.get(4_000_000), Some(&1));
        // Pre-sizing admits the same key densely.
        let mut p: DenseMap<u8> = DenseMap::with_dense_capacity(5_000_000);
        p.insert(4_000_000, 2);
        assert_eq!(p.dense.len(), 4_000_001);
        assert_eq!(p.get(4_000_000), Some(&2));
    }

    #[test]
    fn dense_map_recovers_stranded_overflow_keys() {
        let mut m: DenseMap<u32> = DenseMap::new();
        m.insert(2_000, 7); // beyond slack of an empty map → overflow
        assert!(m.dense.is_empty());
        for k in 0..3_000u32 {
            m.insert(k, k);
        }
        // The dense region grew over the stranded key; the re-insert
        // replaced (not duplicated) it.
        assert_eq!(m.len(), 3_000);
        assert_eq!(m.get(2_000), Some(&2_000));
        assert_eq!(m.remove(2_000), Some(2_000));
        assert_eq!(m.get(2_000), None);
    }

    #[test]
    fn dense_map_insert_replaces() {
        let mut m: DenseMap<&str> = DenseMap::new();
        assert_eq!(m.insert(3, "first"), None);
        assert_eq!(m.insert(3, "second"), Some("first"));
        assert_eq!(m.len(), 1);
    }
}
