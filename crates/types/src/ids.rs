//! Typed identifiers.
//!
//! Every entity that appears in a log record gets its own newtype id so
//! the measurement pipeline cannot accidentally join a message id against
//! an account id. All ids are dense (allocated sequentially by their
//! owning subsystem) which lets stores index by `id.index()` into a `Vec`.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a dense index.
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
            /// Dense index for `Vec` storage.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A user account at the simulated mail provider.
    AccountId,
    "acct"
);
define_id!(
    /// A human user of the simulated ecosystem.
    ///
    /// Users and accounts are allocated densely in lockstep by the
    /// population builder, so `UserId(i)` owns `AccountId(i)` — but the
    /// two sides index different stores (behavioral columns vs. provider
    /// state) and the distinct newtypes keep those joins explicit.
    UserId,
    "user"
);
define_id!(
    /// A single email message in some mailbox.
    MessageId,
    "msg"
);
define_id!(
    /// A phishing campaign (one blast of lure emails plus its page).
    CampaignId,
    "camp"
);
define_id!(
    /// A phishing web page (form) collecting credentials.
    PageId,
    "page"
);
define_id!(
    /// A manual-hijacking crew (organized group of human operators).
    CrewId,
    "crew"
);
define_id!(
    /// One confirmed manual-hijacking incident against one account.
    IncidentId,
    "inc"
);
define_id!(
    /// An account-recovery claim filed by a user.
    ClaimId,
    "claim"
);
define_id!(
    /// An authenticated session.
    SessionId,
    "sess"
);
define_id!(
    /// A client device (browser/cookie identity) seen at login.
    DeviceId,
    "dev"
);
define_id!(
    /// A mail filter / forwarding rule.
    FilterId,
    "filt"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_indices() {
        for i in [0usize, 1, 42, 65535] {
            assert_eq!(AccountId::from_index(i).index(), i);
            assert_eq!(MessageId::from_index(i).index(), i);
        }
    }

    #[test]
    fn user_and_account_ids_do_not_unify() {
        // Same dense index, different types: `UserId(3) == AccountId(3)`
        // must not compile; the explicit bridge is via `index()`.
        let user = UserId::from_index(3);
        let account = AccountId::from_index(user.index());
        assert_eq!(account.index(), user.index());
        assert_eq!(user.to_string(), "user3");
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(AccountId(7).to_string(), "acct7");
        assert_eq!(PageId(3).to_string(), "page3");
        assert_eq!(IncidentId(0).to_string(), "inc0");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(AccountId(1));
        set.insert(AccountId(1));
        set.insert(AccountId(2));
        assert_eq!(set.len(), 2);
        assert!(AccountId(1) < AccountId(2));
    }

    #[test]
    fn ids_serialize_as_plain_integers() {
        let json = serde_json::to_string(&CrewId(9)).unwrap();
        assert_eq!(json, "9");
        let back: CrewId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CrewId(9));
    }
}
