//! Phone numbers.
//!
//! Figure 12 attributes hijackers by the country code of phone numbers
//! they registered while enabling 2-step verification on victim accounts
//! (a short-lived 2012 lockout tactic). A phone number here is an
//! international prefix plus a national subscriber number.

use crate::geo::CountryCode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An E.164-style phone number: `+<prefix> <national>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhoneNumber {
    prefix: u16,
    national: u64,
}

impl PhoneNumber {
    /// Construct a number in `country`'s dialling plan.
    pub fn new(country: CountryCode, national: u64) -> Self {
        PhoneNumber { prefix: country.phone_prefix(), national }
    }

    /// Construct from a raw prefix (used when parsing logged numbers).
    pub fn from_parts(prefix: u16, national: u64) -> Self {
        PhoneNumber { prefix, national }
    }

    /// International dialling prefix.
    pub fn prefix(&self) -> u16 {
        self.prefix
    }

    /// National subscriber number.
    pub fn national(&self) -> u64 {
        self.national
    }

    /// Attribute the number to a country by its dialling prefix — exactly
    /// the mapping used to produce Figure 12.
    pub fn country(&self) -> Option<CountryCode> {
        CountryCode::from_phone_prefix(self.prefix)
    }
}

impl fmt::Display for PhoneNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}{:08}", self.prefix, self.national)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_carries_country_prefix() {
        let p = PhoneNumber::new(CountryCode::NG, 80312345);
        assert_eq!(p.prefix(), 234);
        assert_eq!(p.country(), Some(CountryCode::NG));
    }

    #[test]
    fn unknown_prefix_has_no_country() {
        let p = PhoneNumber::from_parts(999, 1234);
        assert_eq!(p.country(), None);
    }

    #[test]
    fn display_is_e164_like() {
        let p = PhoneNumber::new(CountryCode::CI, 7654321);
        assert_eq!(p.to_string(), "+22507654321");
    }

    #[test]
    fn nanp_numbers_attribute_to_us() {
        // US and Canada share +1; coarse prefix attribution yields US.
        let p = PhoneNumber::new(CountryCode::CA, 5551234);
        assert_eq!(p.country(), Some(CountryCode::US));
    }
}
