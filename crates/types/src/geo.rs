//! Countries and languages.
//!
//! The paper's attribution analysis (§7) geolocates hijacker IPs and phone
//! numbers to countries, and observes language structure in hijacker
//! behaviour (Chinese and Spanish search terms; the Ivory Coast crews
//! scamming French-speaking countries, the Nigerian crews English-speaking
//! ones). The simulator therefore needs a small but real country model:
//! ISO-ish codes, primary language, a representative UTC offset (for crew
//! office hours) and an international phone prefix.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Primary language spoken in a country. Drives which victims a crew
/// prefers and which language its scam text and mailbox search terms use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum Language {
    English,
    French,
    Spanish,
    Chinese,
    Portuguese,
    Malay,
    Vietnamese,
    German,
    Other,
}

/// Countries that appear in the paper's attribution analysis plus enough
/// bystander countries to make victim populations and traffic realistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CountryCode {
    /// United States
    US,
    /// China — dominant source of hijacker login IPs (Fig 11).
    CN,
    /// Malaysia — major source of hijacker login IPs (Fig 11).
    MY,
    /// Nigeria — major crew home, English-speaking victims (Fig 12).
    NG,
    /// Ivory Coast (Côte d'Ivoire) — major crew home, French-speaking victims (Fig 12).
    CI,
    /// South Africa — ≈10% of both IP and phone datasets (§7).
    ZA,
    /// Venezuela — consistent with Spanish search terms (§5.2, §7).
    VE,
    /// France
    FR,
    /// United Kingdom
    GB,
    /// Germany
    DE,
    /// Spain
    ES,
    /// India
    IN,
    /// Brazil
    BR,
    /// Vietnam
    VN,
    /// Mali
    ML,
    /// Canada
    CA,
    /// Australia
    AU,
    /// Mexico
    MX,
}

impl CountryCode {
    /// All modelled countries.
    pub const ALL: [CountryCode; 18] = [
        CountryCode::US,
        CountryCode::CN,
        CountryCode::MY,
        CountryCode::NG,
        CountryCode::CI,
        CountryCode::ZA,
        CountryCode::VE,
        CountryCode::FR,
        CountryCode::GB,
        CountryCode::DE,
        CountryCode::ES,
        CountryCode::IN,
        CountryCode::BR,
        CountryCode::VN,
        CountryCode::ML,
        CountryCode::CA,
        CountryCode::AU,
        CountryCode::MX,
    ];

    /// Two-letter code string, as rendered in the paper's figures.
    pub fn code(self) -> &'static str {
        match self {
            CountryCode::US => "US",
            CountryCode::CN => "CN",
            CountryCode::MY => "MY",
            CountryCode::NG => "NG",
            CountryCode::CI => "CI",
            CountryCode::ZA => "ZA",
            CountryCode::VE => "VE",
            CountryCode::FR => "FR",
            CountryCode::GB => "GB",
            CountryCode::DE => "DE",
            CountryCode::ES => "ES",
            CountryCode::IN => "IN",
            CountryCode::BR => "BR",
            CountryCode::VN => "VN",
            CountryCode::ML => "ML",
            CountryCode::CA => "CA",
            CountryCode::AU => "AU",
            CountryCode::MX => "MX",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CountryCode::US => "United States",
            CountryCode::CN => "China",
            CountryCode::MY => "Malaysia",
            CountryCode::NG => "Nigeria",
            CountryCode::CI => "Ivory Coast",
            CountryCode::ZA => "South Africa",
            CountryCode::VE => "Venezuela",
            CountryCode::FR => "France",
            CountryCode::GB => "United Kingdom",
            CountryCode::DE => "Germany",
            CountryCode::ES => "Spain",
            CountryCode::IN => "India",
            CountryCode::BR => "Brazil",
            CountryCode::VN => "Vietnam",
            CountryCode::ML => "Mali",
            CountryCode::CA => "Canada",
            CountryCode::AU => "Australia",
            CountryCode::MX => "Mexico",
        }
    }

    /// Primary language. Crews preferentially target victims whose
    /// language they speak (§7: CI ⇒ French-speaking countries, NG ⇒
    /// English-speaking ones).
    pub fn language(self) -> Language {
        match self {
            CountryCode::US | CountryCode::GB | CountryCode::CA | CountryCode::AU => {
                Language::English
            }
            CountryCode::NG | CountryCode::ZA | CountryCode::IN => Language::English,
            CountryCode::CI | CountryCode::FR | CountryCode::ML => Language::French,
            CountryCode::VE | CountryCode::ES | CountryCode::MX => Language::Spanish,
            CountryCode::CN => Language::Chinese,
            CountryCode::MY => Language::Malay,
            CountryCode::VN => Language::Vietnamese,
            CountryCode::BR => Language::Portuguese,
            CountryCode::DE => Language::German,
        }
    }

    /// Representative whole-hour UTC offset (standard time; a single
    /// offset per country is sufficient for office-hours modelling).
    pub fn utc_offset_hours(self) -> i32 {
        match self {
            CountryCode::US => -5,
            CountryCode::CN => 8,
            CountryCode::MY => 8,
            CountryCode::NG => 1,
            CountryCode::CI => 0,
            CountryCode::ZA => 2,
            CountryCode::VE => -4,
            CountryCode::FR => 1,
            CountryCode::GB => 0,
            CountryCode::DE => 1,
            CountryCode::ES => 1,
            CountryCode::IN => 5, // IST is +5:30; rounded to whole hours
            CountryCode::BR => -3,
            CountryCode::VN => 7,
            CountryCode::ML => 0,
            CountryCode::CA => -5,
            CountryCode::AU => 10,
            CountryCode::MX => -6,
        }
    }

    /// International dialling prefix, used to attribute hijacker phone
    /// numbers to countries (Fig 12).
    pub fn phone_prefix(self) -> u16 {
        match self {
            CountryCode::US | CountryCode::CA => 1,
            CountryCode::CN => 86,
            CountryCode::MY => 60,
            CountryCode::NG => 234,
            CountryCode::CI => 225,
            CountryCode::ZA => 27,
            CountryCode::VE => 58,
            CountryCode::FR => 33,
            CountryCode::GB => 44,
            CountryCode::DE => 49,
            CountryCode::ES => 34,
            CountryCode::IN => 91,
            CountryCode::BR => 55,
            CountryCode::VN => 84,
            CountryCode::ML => 223,
            CountryCode::AU => 61,
            CountryCode::MX => 52,
        }
    }

    /// Look a country up by its dialling prefix. `US`/`CA` share +1; the
    /// lookup resolves it to `US`, which matches how coarse phone-prefix
    /// attribution works in practice.
    pub fn from_phone_prefix(prefix: u16) -> Option<CountryCode> {
        CountryCode::ALL.iter().copied().find(|c| c.phone_prefix() == prefix)
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_countries_unique() {
        let set: HashSet<_> = CountryCode::ALL.iter().collect();
        assert_eq!(set.len(), CountryCode::ALL.len());
    }

    #[test]
    fn paper_attribution_countries_present() {
        // §7 names these five as the main hijacker origins.
        for c in [
            CountryCode::CN,
            CountryCode::CI,
            CountryCode::MY,
            CountryCode::NG,
            CountryCode::ZA,
        ] {
            assert!(CountryCode::ALL.contains(&c));
        }
    }

    #[test]
    fn crew_language_split_matches_paper() {
        // "the Ivory Coast specialize in scamming French speaking
        //  countries where as the Nigeria focus on English speaking"
        assert_eq!(CountryCode::CI.language(), Language::French);
        assert_eq!(CountryCode::NG.language(), Language::English);
        assert_eq!(CountryCode::CN.language(), Language::Chinese);
        assert_eq!(CountryCode::VE.language(), Language::Spanish);
    }

    #[test]
    fn phone_prefix_round_trips() {
        for c in CountryCode::ALL {
            let back = CountryCode::from_phone_prefix(c.phone_prefix()).unwrap();
            if c == CountryCode::CA {
                // +1 is shared; resolves to US.
                assert_eq!(back, CountryCode::US);
            } else {
                assert_eq!(back, c);
            }
        }
        assert_eq!(CountryCode::from_phone_prefix(999), None);
    }

    #[test]
    fn offsets_are_plausible() {
        for c in CountryCode::ALL {
            let off = c.utc_offset_hours();
            assert!((-12..=14).contains(&off), "{c} offset {off}");
        }
        assert_eq!(CountryCode::CN.utc_offset_hours(), 8);
        assert_eq!(CountryCode::CI.utc_offset_hours(), 0);
    }

    #[test]
    fn display_uses_code() {
        assert_eq!(CountryCode::NG.to_string(), "NG");
        assert_eq!(CountryCode::CI.name(), "Ivory Coast");
    }
}
