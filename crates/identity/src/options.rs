//! Recovery options: phone, secondary email, secret question.
//!
//! §6.3 analyzes why each recovery channel succeeds or fails:
//!
//! * **SMS** (80.91% success) fails on unreliable gateways in some
//!   countries and the occasional stale number;
//! * **secondary email** (74.57%) fails on mistyped addresses (~5%
//!   bounce), staleness, and *recycling* — ~7% of recovery addresses had
//!   been expired and re-registerable by 2014, so the provider must
//!   refuse the channel when recycling is suspected;
//! * **secret questions** have poor recall and are guessable (§6.3 calls
//!   them "insecure and unreliable").
//!
//! Hijackers also *change* these options to delay recovery (§5.4); every
//! change is audited so remission can revert them and the longitudinal
//! "60% → 21% hijacker-initiated option changes" measurement can be
//! computed from the audit trail.

use mhw_types::{AccountId, Actor, EmailAddress, PhoneNumber, SimTime};

/// A registered recovery phone.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPhone {
    pub number: PhoneNumber,
    /// Users "tend to keep their phone number up-to-date" (§6.3);
    /// a small minority do not.
    pub up_to_date: bool,
    /// SMS gateway reliability for this number's country, 0..1.
    pub gateway_reliability: f64,
}

/// A registered secondary email.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEmail {
    pub address: EmailAddress,
    /// Whether the user completed verification (not enforced, §6.3).
    pub verified: bool,
    /// The user mistyped it at registration (≈5% bounce source).
    pub mistyped: bool,
    /// The provider expired + re-issued this mailbox (the ≈7% recycling
    /// problem). A recycled address must never be offered for recovery.
    pub recycled: bool,
}

/// A secret question with its human factors.
#[derive(Debug, Clone, PartialEq)]
pub struct SecretQuestion {
    /// Probability the owner still recalls their exact answer.
    pub owner_recall: f64,
    /// Probability a researching hijacker can guess the answer.
    pub guessability: f64,
}

/// One audited change to recovery options.
#[derive(Debug, Clone)]
pub struct OptionChange {
    pub at: SimTime,
    pub actor: Actor,
    pub what: &'static str,
}

/// The recovery-option state of one account.
#[derive(Debug, Clone, Default)]
pub struct AccountOptions {
    pub phone: Option<RecoveryPhone>,
    pub email: Option<RecoveryEmail>,
    pub question: Option<SecretQuestion>,
    changes: Vec<OptionChange>,
}

/// Store of recovery options for all accounts.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    accounts: Vec<AccountOptions>,
}

impl RecoveryOptions {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the next account (dense, in order).
    pub fn register(&mut self, account: AccountId) {
        assert_eq!(account.index(), self.accounts.len(), "register accounts densely in order");
        self.accounts.push(AccountOptions::default());
    }

    pub fn get(&self, account: AccountId) -> &AccountOptions {
        &self.accounts[account.index()]
    }

    pub fn set_phone(
        &mut self,
        account: AccountId,
        actor: Actor,
        phone: Option<RecoveryPhone>,
        at: SimTime,
    ) {
        let a = &mut self.accounts[account.index()];
        a.phone = phone;
        a.changes.push(OptionChange { at, actor, what: "phone" });
    }

    pub fn set_email(
        &mut self,
        account: AccountId,
        actor: Actor,
        email: Option<RecoveryEmail>,
        at: SimTime,
    ) {
        let a = &mut self.accounts[account.index()];
        a.email = email;
        a.changes.push(OptionChange { at, actor, what: "email" });
    }

    pub fn set_question(
        &mut self,
        account: AccountId,
        actor: Actor,
        question: Option<SecretQuestion>,
        at: SimTime,
    ) {
        let a = &mut self.accounts[account.index()];
        a.question = question;
        a.changes.push(OptionChange { at, actor, what: "question" });
    }

    /// Initial (unaudited) setup at account creation; used by the
    /// population builder so that "user never changed their options"
    /// remains distinguishable in the audit trail.
    pub fn init(
        &mut self,
        account: AccountId,
        phone: Option<RecoveryPhone>,
        email: Option<RecoveryEmail>,
        question: Option<SecretQuestion>,
    ) {
        let a = &mut self.accounts[account.index()];
        a.phone = phone;
        a.email = email;
        a.question = question;
    }

    /// Mark the secondary email as recycled (provider-side expiry
    /// discovered later; §6.3's 7%).
    pub fn mark_email_recycled(&mut self, account: AccountId) {
        if let Some(e) = &mut self.accounts[account.index()].email {
            e.recycled = true;
        }
    }

    /// All audited changes.
    pub fn changes(&self, account: AccountId) -> &[OptionChange] {
        &self.accounts[account.index()].changes
    }

    /// Whether a hijacker changed any recovery option at/after `since`
    /// (the §5.4 delay-recovery tactic; 60% of 2011 cases, 21% of 2012).
    pub fn hijacker_changed_since(&self, account: AccountId, since: SimTime) -> bool {
        self.changes(account)
            .iter()
            .any(|c| c.at >= since && c.actor.is_hijacker())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::{CountryCode, CrewId};

    fn phone() -> RecoveryPhone {
        RecoveryPhone {
            number: PhoneNumber::new(CountryCode::US, 55512345),
            up_to_date: true,
            gateway_reliability: 0.97,
        }
    }

    #[test]
    fn register_and_defaults() {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        let a = o.get(AccountId(0));
        assert!(a.phone.is_none() && a.email.is_none() && a.question.is_none());
    }

    #[test]
    fn init_does_not_audit() {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        o.init(AccountId(0), Some(phone()), None, None);
        assert!(o.get(AccountId(0)).phone.is_some());
        assert!(o.changes(AccountId(0)).is_empty());
    }

    #[test]
    fn hijacker_option_change_detected() {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        o.init(AccountId(0), Some(phone()), None, None);
        let crew = Actor::Hijacker(CrewId(2));
        o.set_phone(AccountId(0), crew, None, SimTime::from_secs(100));
        assert!(o.get(AccountId(0)).phone.is_none());
        assert!(o.hijacker_changed_since(AccountId(0), SimTime::from_secs(50)));
        assert!(!o.hijacker_changed_since(AccountId(0), SimTime::from_secs(150)));
    }

    #[test]
    fn owner_changes_are_not_hijacker_changes() {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        o.set_email(
            AccountId(0),
            Actor::Owner,
            Some(RecoveryEmail {
                address: EmailAddress::new("me", "backup.net"),
                verified: true,
                mistyped: false,
                recycled: false,
            }),
            SimTime::from_secs(10),
        );
        assert!(!o.hijacker_changed_since(AccountId(0), SimTime::from_secs(0)));
        assert_eq!(o.changes(AccountId(0)).len(), 1);
        assert_eq!(o.changes(AccountId(0))[0].what, "email");
    }

    #[test]
    fn recycling_marker() {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        o.init(
            AccountId(0),
            None,
            Some(RecoveryEmail {
                address: EmailAddress::new("me", "expiring.com"),
                verified: false,
                mistyped: false,
                recycled: false,
            }),
            None,
        );
        o.mark_email_recycled(AccountId(0));
        assert!(o.get(AccountId(0)).email.as_ref().unwrap().recycled);
        // Marking with no email on file is a no-op.
        let mut o2 = RecoveryOptions::new();
        o2.register(AccountId(0));
        o2.mark_email_recycled(AccountId(0));
        assert!(o2.get(AccountId(0)).email.is_none());
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn dense_registration_enforced() {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(3));
    }
}
