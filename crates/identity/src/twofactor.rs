//! Two-step verification state.
//!
//! §8.2 calls a second factor "the best client-side defense against
//! hijacking". Two aspects are modelled:
//!
//! * legitimate enrolment (with its legacy-app escape hatch, the
//!   *application-specific password*, which §8.2 notes "can be phished");
//! * the hijacker abuse of 2FA as a **lockout tactic** — in 2012 crews
//!   briefly enabled 2FA with *their own* phone numbers on victim
//!   accounts. The enrolment audit trail is exactly the Figure 12
//!   dataset ("300 phones that hijackers used in an attempt to lock out
//!   their victims").

use mhw_types::{AccountId, Actor, PhoneNumber, SimTime};

/// The kind of second factor enrolled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorKind {
    /// SMS/app codes to a phone — strong, but the enrolled phone can be
    /// swapped (the crews' lockout tactic) and codes can be phished.
    Phone,
    /// A hardware security key (§8.2's "alternatives \[7\]", the gnubby
    /// line of work): unphishable, and enrolment changes require
    /// touching the key, so crews can neither pass nor swap it.
    SecurityKey,
}

/// One 2FA enrolment/disablement event.
#[derive(Debug, Clone)]
pub struct TwoFactorAudit {
    pub at: SimTime,
    pub actor: Actor,
    /// The phone enrolled (None = disabled or a security key).
    pub phone: Option<PhoneNumber>,
}

#[derive(Debug, Clone, Default)]
struct AccountTwoFactor {
    phone: Option<PhoneNumber>,
    security_key: bool,
    app_passwords: Vec<String>,
    audit: Vec<TwoFactorAudit>,
}

/// 2FA state for all accounts.
#[derive(Debug, Clone, Default)]
pub struct TwoFactorState {
    accounts: Vec<AccountTwoFactor>,
}

impl TwoFactorState {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, account: AccountId) {
        assert_eq!(account.index(), self.accounts.len(), "register accounts densely in order");
        self.accounts.push(AccountTwoFactor::default());
    }

    /// Whether 2FA is enabled (phone or security key).
    pub fn enabled(&self, account: AccountId) -> bool {
        let a = &self.accounts[account.index()];
        a.phone.is_some() || a.security_key
    }

    /// The enrolled factor kind, if any.
    pub fn factor_kind(&self, account: AccountId) -> Option<FactorKind> {
        let a = &self.accounts[account.index()];
        if a.security_key {
            Some(FactorKind::SecurityKey)
        } else if a.phone.is_some() {
            Some(FactorKind::Phone)
        } else {
            None
        }
    }

    /// Enrol a hardware security key. Once a key protects the account,
    /// phone-based (re-)enrolment is refused — swapping the factor
    /// requires the key, which is exactly what defeats the crews'
    /// lockout tactic.
    pub fn enroll_security_key(&mut self, account: AccountId, actor: Actor, at: SimTime) {
        let a = &mut self.accounts[account.index()];
        a.security_key = true;
        a.phone = None;
        a.audit.push(TwoFactorAudit { at, actor, phone: None });
    }

    /// Whether the account is protected by a security key.
    pub fn has_security_key(&self, account: AccountId) -> bool {
        self.accounts[account.index()].security_key
    }

    /// The enrolled phone, if any.
    pub fn phone(&self, account: AccountId) -> Option<&PhoneNumber> {
        self.accounts[account.index()].phone.as_ref()
    }

    /// Enable phone-based 2FA (owner enrolment or hijacker lockout).
    /// Returns `false` (refused) when a security key protects the
    /// account.
    pub fn enable(&mut self, account: AccountId, actor: Actor, phone: PhoneNumber, at: SimTime) -> bool {
        let a = &mut self.accounts[account.index()];
        if a.security_key {
            return false;
        }
        a.phone = Some(phone);
        a.audit.push(TwoFactorAudit { at, actor, phone: Some(phone) });
        true
    }

    /// Disable 2FA (phone or key).
    pub fn disable(&mut self, account: AccountId, actor: Actor, at: SimTime) {
        let a = &mut self.accounts[account.index()];
        a.phone = None;
        a.security_key = false;
        a.audit.push(TwoFactorAudit { at, actor, phone: None });
    }

    /// Issue an application-specific password for a legacy client.
    /// Returns the token. ASPs bypass the second factor at login —
    /// which is why §8.2 calls them "far from ideal".
    pub fn issue_app_password(&mut self, account: AccountId, token: &str) {
        self.accounts[account.index()].app_passwords.push(token.to_string());
    }

    /// Verify an ASP token.
    pub fn verify_app_password(&self, account: AccountId, token: &str) -> bool {
        self.accounts[account.index()].app_passwords.iter().any(|t| t == token)
    }

    /// Revoke all ASPs (part of recovery cleanup).
    pub fn revoke_app_passwords(&mut self, account: AccountId) -> usize {
        let n = self.accounts[account.index()].app_passwords.len();
        self.accounts[account.index()].app_passwords.clear();
        n
    }

    /// Full audit trail for an account.
    pub fn audit(&self, account: AccountId) -> &[TwoFactorAudit] {
        &self.accounts[account.index()].audit
    }

    /// Phones hijackers enrolled at/after `since` — the Figure 12
    /// extraction: each hijacker-actor enable event contributes its
    /// phone number.
    pub fn hijacker_enrolled_phones_since(&self, since: SimTime) -> Vec<PhoneNumber> {
        self.accounts
            .iter()
            .flat_map(|a| a.audit.iter())
            .filter(|e| e.at >= since && e.actor.is_hijacker())
            .filter_map(|e| e.phone)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::{CountryCode, CrewId};

    fn ng_phone(n: u64) -> PhoneNumber {
        PhoneNumber::new(CountryCode::NG, 10_000_000 + n)
    }

    fn state1() -> TwoFactorState {
        let mut s = TwoFactorState::new();
        s.register(AccountId(0));
        s
    }

    #[test]
    fn enable_disable_cycle() {
        let mut s = state1();
        assert!(!s.enabled(AccountId(0)));
        s.enable(AccountId(0), Actor::Owner, ng_phone(1), SimTime::from_secs(10));
        assert!(s.enabled(AccountId(0)));
        assert_eq!(s.phone(AccountId(0)), Some(&ng_phone(1)));
        s.disable(AccountId(0), Actor::Owner, SimTime::from_secs(20));
        assert!(!s.enabled(AccountId(0)));
        assert_eq!(s.audit(AccountId(0)).len(), 2);
    }

    #[test]
    fn hijacker_lockout_phones_extracted() {
        let mut s = TwoFactorState::new();
        s.register(AccountId(0));
        s.register(AccountId(1));
        s.enable(AccountId(0), Actor::Owner, ng_phone(1), SimTime::from_secs(5));
        s.enable(
            AccountId(1),
            Actor::Hijacker(CrewId(0)),
            ng_phone(2),
            SimTime::from_secs(100),
        );
        let phones = s.hijacker_enrolled_phones_since(SimTime::from_secs(0));
        assert_eq!(phones, vec![ng_phone(2)]);
        // Time filter applies.
        assert!(s.hijacker_enrolled_phones_since(SimTime::from_secs(200)).is_empty());
    }

    #[test]
    fn app_passwords() {
        let mut s = state1();
        s.issue_app_password(AccountId(0), "asp-legacy-imap");
        assert!(s.verify_app_password(AccountId(0), "asp-legacy-imap"));
        assert!(!s.verify_app_password(AccountId(0), "other"));
        assert_eq!(s.revoke_app_passwords(AccountId(0)), 1);
        assert!(!s.verify_app_password(AccountId(0), "asp-legacy-imap"));
    }

    #[test]
    fn security_key_refuses_phone_swap() {
        let mut s = state1();
        s.enroll_security_key(AccountId(0), Actor::Owner, SimTime::from_secs(1));
        assert!(s.enabled(AccountId(0)));
        assert_eq!(s.factor_kind(AccountId(0)), Some(FactorKind::SecurityKey));
        // The crews' lockout tactic bounces off.
        let ok = s.enable(
            AccountId(0),
            Actor::Hijacker(CrewId(0)),
            ng_phone(9),
            SimTime::from_secs(100),
        );
        assert!(!ok);
        assert_eq!(s.factor_kind(AccountId(0)), Some(FactorKind::SecurityKey));
        assert!(s.hijacker_enrolled_phones_since(SimTime::from_secs(0)).is_empty());
    }

    #[test]
    fn factor_kinds_report_correctly() {
        let mut s = state1();
        assert_eq!(s.factor_kind(AccountId(0)), None);
        assert!(s.enable(AccountId(0), Actor::Owner, ng_phone(1), SimTime::from_secs(1)));
        assert_eq!(s.factor_kind(AccountId(0)), Some(FactorKind::Phone));
        s.disable(AccountId(0), Actor::Owner, SimTime::from_secs(2));
        assert_eq!(s.factor_kind(AccountId(0)), None);
    }
}
