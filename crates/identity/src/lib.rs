//! # mhw-identity
//!
//! The authentication substrate: credentials, recovery options,
//! two-factor state and the append-only **login log** that nearly every
//! measurement in the paper reads from —
//!
//! * Figure 7 watches the log for the first hijacker access to decoy
//!   accounts;
//! * Figure 8 counts login attempts per hijacker IP per day;
//! * Figure 11 geolocates the IPs of hijack-period logins;
//! * §5.1's "75% correct passwords including retries with trivial
//!   variants" is a property of [`credentials::is_trivial_variant`]
//!   combined with the phished-credential capture model.
//!
//! The *decision* of whether a login is allowed, challenged or blocked
//! belongs to `mhw-defense` (login risk analysis, §8.2); this crate
//! provides the mechanisms — password verification, recovery-option
//! state with full audit trails (who changed what when), 2FA enablement
//! records (the Figure 12 dataset) — and records outcomes.

pub mod credentials;
pub mod login;
pub mod options;
pub mod twofactor;

pub use credentials::{is_trivial_variant, CredentialStore, PasswordChange};
pub use login::{ChallengeKind, ChallengeResult, LoginLog, LoginOutcome, LoginRecord};
pub use options::{OptionChange, RecoveryEmail, RecoveryOptions, RecoveryPhone, SecretQuestion};
pub use twofactor::{FactorKind, TwoFactorAudit, TwoFactorState};
