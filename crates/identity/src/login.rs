//! The login log.
//!
//! An append-only record of every authentication attempt, successful or
//! not — the simulator's version of the auth logs behind Datasets 4, 5,
//! 7 and 13 (Table 1). Each record captures what a real provider sees
//! (time, IP, device, outcome, challenge disposition) plus the
//! ground-truth actor for measurement labelling.

use mhw_obs::{MetricId, Registry};
use mhw_types::{
    AccountId, Actor, DeviceId, Entries, Entry, EventSink, IpAddr, LogKey, LogStore, SessionId,
    ShardId, SimTime,
};
use serde::{Deserialize, Serialize};

/// Every authentication attempt appended, regardless of outcome.
pub const M_LOGIN_ATTEMPTS: MetricId = MetricId("identity.login_attempts");
/// Attempts that ended in [`LoginOutcome::Success`].
pub const M_LOGIN_SUCCESS: MetricId = MetricId("identity.login_success");
/// Attempts rejected for a wrong password.
pub const M_LOGIN_WRONG_PASSWORD: MetricId = MetricId("identity.login_wrong_password");
/// Correct-password attempts the risk engine blocked outright.
pub const M_LOGIN_BLOCKED: MetricId = MetricId("identity.login_blocked");
/// Login challenges served (§8.2).
pub const M_CHALLENGES_ISSUED: MetricId = MetricId("identity.challenges_issued");
/// Served challenges the actor failed.
pub const M_CHALLENGES_FAILED: MetricId = MetricId("identity.challenges_failed");
/// Correct-password attempts stopped by an unsatisfied second factor.
pub const M_SECOND_FACTOR_FAILURES: MetricId = MetricId("identity.second_factor_failures");

/// The verification step a risky login was redirected to (§8.2's "login
/// challenge").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChallengeKind {
    /// Prove possession of the enrolled/registered phone via SMS code.
    SmsCode,
    /// Answer knowledge questions (guessable by researching the victim).
    Knowledge,
}

/// Outcome of a served challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChallengeResult {
    pub kind: ChallengeKind,
    pub passed: bool,
}

/// Final outcome of a login attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoginOutcome {
    /// Authenticated; a session was issued.
    Success,
    /// Wrong password.
    WrongPassword,
    /// Password correct but the risk engine blocked outright.
    Blocked,
    /// Password correct, challenge served and failed.
    ChallengeFailed,
    /// Password correct but the enrolled second factor was not
    /// satisfied (§8.2; also fires on owners locked out by the crews'
    /// 2FA tactic).
    SecondFactorFailed,
}

impl LoginOutcome {
    pub fn is_success(self) -> bool {
        matches!(self, LoginOutcome::Success)
    }
}

/// One login attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoginRecord {
    pub at: SimTime,
    pub account: AccountId,
    pub ip: IpAddr,
    pub device: DeviceId,
    pub actor: Actor,
    /// Whether the supplied password was (exactly) correct.
    pub password_correct: bool,
    /// Risk score assigned by the login risk engine, 0..1.
    pub risk_score: f64,
    pub challenge: Option<ChallengeResult>,
    pub outcome: LoginOutcome,
    /// Session issued on success.
    pub session: Option<SessionId>,
}

/// Append-only login log with measurement helpers, backed by the
/// workspace-wide [`LogStore`] segment API.
///
/// Every [`append`](LoginLog::append) also updates the log's metrics
/// [`Registry`] (attempt, outcome and challenge counters), so a shard's
/// authentication activity is observable without replaying its records.
#[derive(Debug, Clone)]
pub struct LoginLog {
    store: LogStore<LoginRecord>,
    next_session: u32,
    metrics: Registry,
}

impl Default for LoginLog {
    fn default() -> Self {
        LoginLog {
            store: LogStore::default(),
            next_session: 0,
            metrics: Registry::new()
                .with_counter(M_LOGIN_ATTEMPTS)
                .with_counter(M_LOGIN_SUCCESS)
                .with_counter(M_LOGIN_WRONG_PASSWORD)
                .with_counter(M_LOGIN_BLOCKED)
                .with_counter(M_CHALLENGES_ISSUED)
                .with_counter(M_CHALLENGES_FAILED)
                .with_counter(M_SECOND_FACTOR_FAILURES),
        }
    }
}

/// Session (and message) id namespaces are sharded through their high
/// byte so ids stay globally unique when multiple logical shards
/// allocate independently.
const SHARD_ID_NAMESPACE: u32 = 1 << 24;

impl LoginLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// A login log owned by logical shard `shard`: records are stamped
    /// with the shard id and session ids come from a per-shard
    /// namespace, so segments from different shards never collide.
    pub fn for_shard(shard: ShardId) -> Self {
        LoginLog {
            store: LogStore::for_shard(shard),
            next_session: shard as u32 * SHARD_ID_NAMESPACE,
            ..Self::default()
        }
    }

    /// The log's metrics registry (counters updated by
    /// [`append`](LoginLog::append)).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Allocate a session id (the caller embeds it in the record).
    pub fn allocate_session(&mut self) -> SessionId {
        let s = SessionId(self.next_session);
        self.next_session += 1;
        s
    }

    /// Append a record. Records arrive in *approximately* increasing
    /// time order (concurrent sessions interleave, exactly like real
    /// log ingestion), so every query below is order-independent.
    pub fn append(&mut self, record: LoginRecord) -> LogKey {
        let at = record.at;
        self.emit(at, record)
    }

    fn count(&self, record: &LoginRecord) {
        self.metrics.inc(M_LOGIN_ATTEMPTS);
        match record.outcome {
            LoginOutcome::Success => self.metrics.inc(M_LOGIN_SUCCESS),
            LoginOutcome::WrongPassword => self.metrics.inc(M_LOGIN_WRONG_PASSWORD),
            LoginOutcome::Blocked => self.metrics.inc(M_LOGIN_BLOCKED),
            LoginOutcome::ChallengeFailed => {}
            LoginOutcome::SecondFactorFailed => self.metrics.inc(M_SECOND_FACTOR_FAILURES),
        }
        if let Some(challenge) = record.challenge {
            self.metrics.inc(M_CHALLENGES_ISSUED);
            if !challenge.passed {
                self.metrics.inc(M_CHALLENGES_FAILED);
            }
        }
    }

    /// The stamped records in emission order (read straight off the
    /// segment's columns).
    pub fn records(&self) -> Entries<'_, LoginRecord> {
        self.store.iter()
    }

    /// The underlying segment (for cross-shard merging).
    pub fn store(&self) -> &LogStore<LoginRecord> {
        &self.store
    }

    pub fn len(&self) -> usize {
        self.store.len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// First *successful* access to `account` at/after `since` — the
    /// Figure 7 decoy-credential measurement probe.
    pub fn first_success_after(
        &self,
        account: AccountId,
        since: SimTime,
    ) -> Option<Entry<'_, LoginRecord>> {
        self.store
            .iter()
            .filter(|r| r.account == account && r.at >= since && r.outcome.is_success())
            .min_by_key(|r| r.at)
    }

    /// All records for an account.
    pub fn for_account(&self, account: AccountId) -> impl Iterator<Item = Entry<'_, LoginRecord>> {
        self.store.iter().filter(move |r| r.account == account)
    }

    /// All records from an IP.
    pub fn from_ip(&self, ip: IpAddr) -> impl Iterator<Item = Entry<'_, LoginRecord>> {
        self.store.iter().filter(move |r| r.ip == ip)
    }

    /// Distinct accounts attempted from `ip` on UTC day `day_index` —
    /// the Figure 8 per-IP discipline measurement.
    pub fn distinct_accounts_from_ip_on_day(&self, ip: IpAddr, day_index: u64) -> usize {
        let mut accounts: Vec<AccountId> = self
            .store
            .iter()
            .filter(|r| r.ip == ip && r.at.day_index() == day_index)
            .map(|r| r.account)
            .collect();
        accounts.sort();
        accounts.dedup();
        accounts.len()
    }
}

impl EventSink<LoginRecord> for LoginLog {
    fn emit(&mut self, at: SimTime, record: LoginRecord) -> LogKey {
        self.count(&record);
        self.store.emit(at, record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::CrewId;

    fn rec(at: u64, account: u32, ip: IpAddr, outcome: LoginOutcome) -> LoginRecord {
        LoginRecord {
            at: SimTime::from_secs(at),
            account: AccountId(account),
            ip,
            device: DeviceId(0),
            actor: Actor::Hijacker(CrewId(0)),
            password_correct: true,
            risk_score: 0.1,
            challenge: None,
            outcome,
            session: None,
        }
    }

    #[test]
    fn session_ids_are_unique() {
        let mut log = LoginLog::new();
        let a = log.allocate_session();
        let b = log.allocate_session();
        assert_ne!(a, b);
    }

    #[test]
    fn first_success_after_finds_the_probe() {
        let mut log = LoginLog::new();
        let ip = IpAddr::new(41, 0, 0, 1);
        log.append(rec(100, 1, ip, LoginOutcome::WrongPassword));
        log.append(rec(200, 1, ip, LoginOutcome::Success));
        log.append(rec(300, 1, ip, LoginOutcome::Success));
        let hit = log.first_success_after(AccountId(1), SimTime::from_secs(50)).unwrap();
        assert_eq!(hit.at, SimTime::from_secs(200));
        // A later horizon skips the earlier success.
        let hit2 = log.first_success_after(AccountId(1), SimTime::from_secs(250)).unwrap();
        assert_eq!(hit2.at, SimTime::from_secs(300));
        assert!(log.first_success_after(AccountId(2), SimTime::from_secs(0)).is_none());
    }

    #[test]
    fn per_ip_day_distinct_accounts() {
        let mut log = LoginLog::new();
        let ip = IpAddr::new(41, 0, 0, 9);
        let other = IpAddr::new(42, 0, 0, 9);
        // Day 0: accounts 1, 2, 2 (dup), day 1: account 3.
        log.append(rec(100, 1, ip, LoginOutcome::Success));
        log.append(rec(200, 2, ip, LoginOutcome::WrongPassword));
        log.append(rec(300, 2, ip, LoginOutcome::Success));
        log.append(rec(500, 7, other, LoginOutcome::Success));
        log.append(rec(86_400 + 10, 3, ip, LoginOutcome::Success));
        assert_eq!(log.distinct_accounts_from_ip_on_day(ip, 0), 2);
        assert_eq!(log.distinct_accounts_from_ip_on_day(ip, 1), 1);
        assert_eq!(log.distinct_accounts_from_ip_on_day(other, 0), 1);
        assert_eq!(log.distinct_accounts_from_ip_on_day(ip, 5), 0);
    }

    #[test]
    fn iterators_filter_correctly() {
        let mut log = LoginLog::new();
        let ip = IpAddr::new(41, 0, 0, 1);
        log.append(rec(1, 1, ip, LoginOutcome::Success));
        log.append(rec(2, 2, ip, LoginOutcome::Blocked));
        assert_eq!(log.for_account(AccountId(1)).count(), 1);
        assert_eq!(log.from_ip(ip).count(), 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn append_updates_metrics() {
        let mut log = LoginLog::new();
        let ip = IpAddr::new(41, 0, 0, 1);
        log.append(rec(1, 1, ip, LoginOutcome::Success));
        log.append(rec(2, 1, ip, LoginOutcome::WrongPassword));
        let mut challenged = rec(3, 1, ip, LoginOutcome::ChallengeFailed);
        challenged.challenge = Some(ChallengeResult { kind: ChallengeKind::SmsCode, passed: false });
        log.append(challenged);
        let m = log.metrics();
        assert_eq!(m.counter_value(M_LOGIN_ATTEMPTS), Some(3));
        assert_eq!(m.counter_value(M_LOGIN_SUCCESS), Some(1));
        assert_eq!(m.counter_value(M_LOGIN_WRONG_PASSWORD), Some(1));
        assert_eq!(m.counter_value(M_CHALLENGES_ISSUED), Some(1));
        assert_eq!(m.counter_value(M_CHALLENGES_FAILED), Some(1));
    }

    #[test]
    fn outcome_success_classification() {
        assert!(LoginOutcome::Success.is_success());
        assert!(!LoginOutcome::Blocked.is_success());
        assert!(!LoginOutcome::ChallengeFailed.is_success());
        assert!(!LoginOutcome::WrongPassword.is_success());
    }
}
