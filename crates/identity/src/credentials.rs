//! Password storage and verification.
//!
//! Passwords are synthetic tokens (never hashes of anything real). The
//! interesting mechanism is *trivial variants*: §5.1 reports hijackers
//! hold the correct password "75% of the time (including retries with
//! trivial variants)" — phishing victims mistype, and crews retry with
//! obvious mutations. [`is_trivial_variant`] defines the mutation
//! neighbourhood both the victim-typo model and the crew retry logic
//! share, so the 75% emerges from capture quality rather than a
//! hard-coded coin flip at login time.

use mhw_types::intern::{Span, StrArena};
use mhw_types::Actor;
use mhw_types::{AccountId, SimTime};

/// Audit record of a password change.
#[derive(Debug, Clone)]
pub struct PasswordChange {
    pub at: SimTime,
    pub actor: Actor,
}

/// Per-account credential state. The password itself lives in the
/// store-wide string arena; the per-account row is a fixed-size span
/// handle, so a million credentials cost one buffer instead of a
/// million heap strings.
#[derive(Debug, Clone)]
struct Credential {
    password: Span,
    changes: Vec<PasswordChange>,
}

/// The credential store for the whole provider.
///
/// Passwords are arena-backed: registration and rotation append into
/// one shared [`StrArena`] and the dense per-account table stores
/// 8-byte [`Span`] handles. Rotated-away passwords stay in the arena
/// (append-only) — at simulation scale the dead bytes are noise next
/// to the per-`String` allocator overhead they replace.
#[derive(Debug, Clone, Default)]
pub struct CredentialStore {
    creds: Vec<Credential>,
    arena: StrArena,
}

impl CredentialStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the next account's initial password. Accounts must be
    /// registered in id order (they are allocated densely).
    pub fn register(&mut self, account: AccountId, password: &str) {
        assert_eq!(
            account.index(),
            self.creds.len(),
            "accounts must be registered densely in order"
        );
        let span = self.arena.push(password);
        self.creds.push(Credential { password: span, changes: Vec::new() });
    }

    /// Exact password check.
    pub fn verify(&self, account: AccountId, candidate: &str) -> bool {
        self.arena.get(self.creds[account.index()].password) == candidate
    }

    /// Whether `candidate` is within the trivial-variant neighbourhood of
    /// the real password (used by crew retry logic; the crew does not see
    /// the real password — the simulator adjudicates the retry).
    pub fn verify_with_variants(&self, account: AccountId, candidate: &str) -> bool {
        let actual = self.arena.get(self.creds[account.index()].password);
        candidate == actual || is_trivial_variant(candidate, actual)
    }

    /// Change the password, recording who did it (owner rotation,
    /// hijacker lockout, or a system-forced reset during recovery).
    pub fn change_password(
        &mut self,
        account: AccountId,
        actor: Actor,
        new_password: &str,
        at: SimTime,
    ) {
        let span = self.arena.push(new_password);
        let c = &mut self.creds[account.index()];
        c.password = span;
        c.changes.push(PasswordChange { at, actor });
    }

    /// All changes to an account's password.
    pub fn changes(&self, account: AccountId) -> &[PasswordChange] {
        &self.creds[account.index()].changes
    }

    /// Whether a hijacker changed the password at or after `since`
    /// (the §5.4 lockout tactic).
    pub fn hijacker_changed_since(&self, account: AccountId, since: SimTime) -> bool {
        self.changes(account)
            .iter()
            .any(|c| c.at >= since && c.actor.is_hijacker())
    }

    /// The real password (simulator-internal: used to seed victim typing
    /// models; never exposed to detection code).
    pub fn password_for_capture(&self, account: AccountId) -> &str {
        self.arena.get(self.creds[account.index()].password)
    }
}

/// Trivial-variant relation between two password strings: equal up to
/// ASCII case, OR within edit distance 1, OR differing only by a single
/// trailing digit appended/removed. These are the retry mutations the
/// paper's "trivial variants" phrasing describes.
pub fn is_trivial_variant(candidate: &str, actual: &str) -> bool {
    if candidate == actual {
        return false; // equality is not a *variant*
    }
    if candidate.eq_ignore_ascii_case(actual) {
        return true;
    }
    if edit_distance_at_most_one(candidate, actual) {
        return true;
    }
    // Trailing digit added or dropped.
    let strip = |s: &str| -> Option<String> {
        let mut cs: Vec<char> = s.chars().collect();
        match cs.last() {
            Some(c) if c.is_ascii_digit() => {
                cs.pop();
                Some(cs.into_iter().collect())
            }
            _ => None,
        }
    };
    if let Some(stripped) = strip(candidate) {
        if stripped == actual {
            return true;
        }
    }
    if let Some(stripped) = strip(actual) {
        if stripped == candidate {
            return true;
        }
    }
    false
}

fn edit_distance_at_most_one(a: &str, b: &str) -> bool {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    if a.len().abs_diff(b.len()) > 1 {
        return false;
    }
    if a.len() == b.len() {
        return a.iter().zip(&b).filter(|(x, y)| x != y).count() <= 1;
    }
    let (long, short) = if a.len() > b.len() { (&a, &b) } else { (&b, &a) };
    let mut skipped = false;
    let (mut i, mut j) = (0, 0);
    while i < long.len() && j < short.len() {
        if long[i] == short[j] {
            i += 1;
            j += 1;
        } else if skipped {
            return false;
        } else {
            skipped = true;
            i += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::CrewId;

    fn store() -> CredentialStore {
        let mut s = CredentialStore::new();
        s.register(AccountId(0), "correct-horse7");
        s
    }

    #[test]
    fn exact_verification() {
        let s = store();
        assert!(s.verify(AccountId(0), "correct-horse7"));
        assert!(!s.verify(AccountId(0), "wrong"));
    }

    #[test]
    fn variant_verification() {
        let s = store();
        assert!(s.verify_with_variants(AccountId(0), "correct-horse7"));
        assert!(s.verify_with_variants(AccountId(0), "Correct-Horse7")); // case
        assert!(s.verify_with_variants(AccountId(0), "correct-horse")); // dropped digit
        assert!(s.verify_with_variants(AccountId(0), "correct-hors7")); // edit distance 1
        assert!(!s.verify_with_variants(AccountId(0), "totally-different"));
    }

    #[test]
    fn trivial_variant_relation() {
        assert!(is_trivial_variant("Password", "password"));
        assert!(is_trivial_variant("password1", "password"));
        assert!(is_trivial_variant("password", "password1"));
        assert!(is_trivial_variant("passwrd", "password")); // one deletion
        assert!(!is_trivial_variant("password", "password")); // equality excluded
        assert!(!is_trivial_variant("pw", "password"));
        assert!(!is_trivial_variant("password12", "password")); // two digits
    }

    #[test]
    fn password_change_audit() {
        let mut s = store();
        let crew = Actor::Hijacker(CrewId(3));
        s.change_password(AccountId(0), crew, "hacked!", SimTime::from_secs(100));
        assert!(s.verify(AccountId(0), "hacked!"));
        assert!(!s.verify(AccountId(0), "correct-horse7"));
        assert_eq!(s.changes(AccountId(0)).len(), 1);
        assert!(s.hijacker_changed_since(AccountId(0), SimTime::from_secs(50)));
        assert!(!s.hijacker_changed_since(AccountId(0), SimTime::from_secs(200)));
        // Owner change does not count as hijacker activity.
        s.change_password(AccountId(0), Actor::Owner, "mine-again", SimTime::from_secs(300));
        assert!(!s.hijacker_changed_since(AccountId(0), SimTime::from_secs(200)));
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn out_of_order_registration_rejected() {
        let mut s = CredentialStore::new();
        s.register(AccountId(5), "x");
    }

    #[test]
    fn capture_exposes_real_password() {
        let s = store();
        assert_eq!(s.password_for_capture(AccountId(0)), "correct-horse7");
    }
}
