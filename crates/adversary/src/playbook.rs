//! The hijack-session playbook.
//!
//! §5's observed workflow, as a state machine executed per captured
//! credential: **log in** (retrying trivial password variants, §5.1) →
//! **assess value** for ~3 minutes via searches, special folders and the
//! contact list (§5.2) → **exploit or abandon** (scam blasts, customized
//! scams, phishing blasts to contacts — §5.3, 15–20 minutes) → **retain**
//! (era-dependent lockout/stealth tactics, §5.4) → log out. The paper
//! stresses that hijackers "will not attempt to exploit accounts that
//! they deem not valuable enough"; the value threshold reproduces that
//! abandonment behaviour.

use crate::crew::Crew;
use crate::retention::RetentionReport;
use crate::scamgen::{generate_scam, ScamStyle};
use crate::terms::{SearchTermModel, TermCategory};
use crate::world::{Folder, HijackerWorld, LoginAttemptOutcome};
use mhw_netmodel::PhonePlan;
use mhw_obs::{buckets, MetricId, Registry};
use mhw_phishkit::{CapturedCredential, CredentialExactness};
use mhw_simclock::SimRng;
use mhw_types::{AccountId, EmailAddress, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Hijack sessions run (one per credential picked off a dropbox).
pub const M_SESSIONS_RUN: MetricId = MetricId("adversary.sessions_run");
/// Sessions that reached the exploitation stage.
pub const M_SESSIONS_EXPLOITED: MetricId = MetricId("adversary.sessions_exploited");
/// Sessions cut short by anti-abuse action.
pub const M_SESSIONS_INTERRUPTED: MetricId = MetricId("adversary.sessions_interrupted");
/// Sessions run against defender decoy credentials.
pub const M_DECOY_SESSIONS: MetricId = MetricId("adversary.decoy_sessions");
/// Capture → session-start latency, simulated seconds (the Figure 7
/// "time to first access" reaction distribution).
pub const M_PICKUP_LATENCY_SECS: MetricId = MetricId("adversary.pickup_latency_secs");

/// How an exploited account was monetized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExploitKind {
    /// Few messages, many recipients each (the 65% case).
    ScamBlast,
    /// Customized scams to fewer than 10 recipients (the 6% case).
    CustomScam,
    /// Phishing lures to the victim's contacts.
    PhishingBlast,
}

/// Everything that happened in one session (measurement ground truth).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The crew that ran the session.
    pub crew: mhw_types::CrewId,
    /// The address on the credential, as typed on the phishing page.
    pub address: EmailAddress,
    /// The provider account that address resolved to, if any.
    pub account: Option<AccountId>,
    /// When the operator picked the credential up.
    pub started_at: SimTime,
    /// When the session ended (logout, abandon, or interruption).
    pub ended_at: SimTime,
    /// Login attempts made, including trivial-variant retries.
    pub login_attempts: u32,
    /// Whether any attempt produced an authenticated session.
    pub logged_in: bool,
    /// Whether the crew (eventually) presented a correct password —
    /// §5.1's "75% of the time (including retries with trivial
    /// variants)".
    pub password_eventually_correct: bool,
    /// Seconds spent on the ~3-minute value assessment (§5.2).
    pub profiling_seconds: u64,
    /// Search terms issued during profiling (Table 3 categories).
    pub searches: Vec<String>,
    /// Folders opened during profiling.
    pub folders_opened: Vec<Folder>,
    /// Contacts enumerated for scam/phishing targeting.
    pub contacts_seen: usize,
    /// The assessed account value driving exploit-or-abandon.
    pub value_score: f64,
    /// Whether the crew went past profiling into exploitation.
    pub exploited: bool,
    /// Which exploitation mode ran, when one did.
    pub exploit_kind: Option<ExploitKind>,
    /// Total messages sent from the account.
    pub messages_sent: u32,
    /// Scam messages among those sent.
    pub scam_messages: u32,
    /// Phishing lures among those sent.
    pub phishing_messages: u32,
    /// Largest single-message recipient list.
    pub max_recipients: usize,
    /// What retention tactics the crew applied (§5.4).
    pub retention: RetentionReport,
    /// The session was cut short by anti-abuse action.
    pub interrupted: bool,
    /// Whether the credential was a defender decoy (Figure 7 probe).
    pub was_decoy: bool,
}

/// The playbook configuration shared by all crews (§5.5: "the tools and
/// utilities they used were the same").
#[derive(Debug, Clone)]
pub struct HijackPlaybook {
    /// The Table 3 search-term distribution used during profiling.
    pub terms: SearchTermModel,
    /// Accounts scoring below this are abandoned after profiling.
    pub value_threshold: f64,
    /// Mean profiling duration in seconds (paper: 3 minutes).
    pub mean_profiling_secs: f64,
    /// Mean exploitation duration in seconds (paper: 15–20 minutes).
    pub mean_exploit_secs: f64,
    metrics: Registry,
}

impl Default for HijackPlaybook {
    fn default() -> Self {
        HijackPlaybook {
            terms: SearchTermModel::new(),
            value_threshold: 0.22,
            mean_profiling_secs: 180.0,
            mean_exploit_secs: 17.0 * 60.0,
            metrics: Registry::new()
                .with_counter(M_SESSIONS_RUN)
                .with_counter(M_SESSIONS_EXPLOITED)
                .with_counter(M_SESSIONS_INTERRUPTED)
                .with_counter(M_DECOY_SESSIONS)
                .with_histogram(M_PICKUP_LATENCY_SECS, buckets::LATENCY_SECS),
        }
    }
}

/// Build a doppelganger address for a victim (§5.4): same local part at
/// a lookalike provider, or a typo'd local at a generic provider.
pub fn doppelganger_for(victim: &EmailAddress, rng: &mut SimRng) -> EmailAddress {
    if rng.chance(0.6) {
        EmailAddress::new(victim.local(), "hornemail.com") // lookalike domain
    } else {
        let mut local = victim.local().to_string();
        local.push('1'); // trailing-character typo variant
        EmailAddress::new(local, "freemail-intl.net")
    }
}

impl HijackPlaybook {
    /// The playbook's metrics registry (session counts and the
    /// dropbox-pickup latency distribution).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Run one full session for a captured credential, starting at
    /// `start` (the moment the operator picks the credential off the
    /// dropbox queue). All world interaction flows through `world`.
    pub fn run_session(
        &self,
        crew: &mut Crew,
        cred: &CapturedCredential,
        world: &mut dyn HijackerWorld,
        phones: &mut PhonePlan,
        start: SimTime,
        rng: &mut SimRng,
    ) -> SessionReport {
        self.metrics.inc(M_SESSIONS_RUN);
        if cred.is_decoy {
            self.metrics.inc(M_DECOY_SESSIONS);
        }
        self.metrics
            .observe(M_PICKUP_LATENCY_SECS, start.since(cred.captured_at).as_secs());
        let report = self.session_inner(crew, cred, world, phones, start, rng);
        if report.exploited {
            self.metrics.inc(M_SESSIONS_EXPLOITED);
        }
        if report.interrupted {
            self.metrics.inc(M_SESSIONS_INTERRUPTED);
        }
        report
    }

    fn session_inner(
        &self,
        crew: &mut Crew,
        cred: &CapturedCredential,
        world: &mut dyn HijackerWorld,
        phones: &mut PhonePlan,
        start: SimTime,
        rng: &mut SimRng,
    ) -> SessionReport {
        let mut now = start;
        let mut report = SessionReport {
            crew: crew.id,
            address: cred.address.clone(),
            account: None,
            started_at: start,
            ended_at: start,
            login_attempts: 0,
            logged_in: false,
            password_eventually_correct: false,
            profiling_seconds: 0,
            searches: Vec::new(),
            folders_opened: Vec::new(),
            contacts_seen: 0,
            value_score: 0.0,
            exploited: false,
            exploit_kind: None,
            messages_sent: 0,
            scam_messages: 0,
            phishing_messages: 0,
            max_recipients: 0,
            retention: RetentionReport::default(),
            interrupted: false,
            was_decoy: cred.is_decoy,
        };

        // ---- Stage 1: login, with trivial-variant retries (§5.1) ----
        // Crews prefer a cloaking proxy in the victim's own country
        // when the phishing page recorded one — it blends with organic
        // traffic. Otherwise they use the crew exit pool under per-IP
        // discipline.
        let ip = match cred.victim_country {
            Some(country) if rng.chance(crew.spec.geo_match_propensity) => {
                world.proxy_exit_in(country)
            }
            _ => crew.exit_for_new_account(now.day_index(), rng),
        };
        let account = loop {
            report.login_attempts += 1;
            let outcome = world.try_login(crew.id, &cred.address, &cred.password_typed, ip, crew.device, now);
            now += SimDuration::from_secs(20 + rng.below(40));
            match outcome {
                LoginAttemptOutcome::Success(a) => {
                    report.password_eventually_correct = true;
                    break Some(a);
                }
                LoginAttemptOutcome::WrongPassword => {
                    // The operator tries a couple of obvious mutations.
                    if report.login_attempts <= 3
                        && cred.exactness == CredentialExactness::TrivialVariant
                        && world.variant_retry_would_succeed(&cred.address, &cred.password_typed)
                    {
                        // A later retry lands on the right variant. The
                        // simulator adjudicates which retry succeeds.
                        if rng.chance(0.6) || report.login_attempts == 3 {
                            report.password_eventually_correct = true;
                            report.login_attempts += 1;
                            // A correct-variant login still goes through
                            // the risk engine.
                            match world.try_login(crew.id, &cred.address, "<variant-correct>", ip, crew.device, now) {
                                LoginAttemptOutcome::Success(a) => break Some(a),
                                _ => break None,
                            }
                        }
                        continue;
                    }
                    break None;
                }
                LoginAttemptOutcome::ChallengeFailed => {
                    report.password_eventually_correct = true;
                    break None;
                }
                LoginAttemptOutcome::Blocked | LoginAttemptOutcome::NoSuchAccount => break None,
            }
        };
        report.account = account;
        let Some(account) = account else {
            report.ended_at = now;
            return report;
        };
        report.logged_in = true;

        // ---- Stage 2: value assessment (~3 min, §5.2) ----
        let budget = rng
            .lognormal(self.mean_profiling_secs.ln(), 0.5)
            .clamp(40.0, 900.0) as u64;
        let profile_end = now.plus(SimDuration::from_secs(budget));
        let mut finance_hits = 0usize;
        let mut account_hits = 0usize;
        let mut content_hits = 0usize;

        // Searches: 1–5 draws from the Table 3 distribution.
        let n_searches = 1 + rng.below(5);
        for _ in 0..n_searches {
            if now >= profile_end || world.account_disabled(account) {
                break;
            }
            let term = self.terms.sample(crew.language, rng);
            let hits = world.search(crew.id, account, term, now);
            match self.terms.category_of(term) {
                Some(TermCategory::Finance) => finance_hits += hits,
                Some(TermCategory::Account) => account_hits += hits,
                Some(TermCategory::Content) => content_hits += hits,
                None => {}
            }
            report.searches.push(term.to_string());
            now += SimDuration::from_secs(15 + rng.below(45));
        }

        // Special folders with the §5.2 probabilities.
        for (folder, p) in [
            (Folder::Starred, 0.16),
            (Folder::Drafts, 0.11),
            (Folder::Sent, 0.05),
            (Folder::Trash, 0.01),
        ] {
            if now < profile_end && !world.account_disabled(account) && rng.chance(p) {
                world.open_folder(crew.id, account, folder, now);
                report.folders_opened.push(folder);
                now += SimDuration::from_secs(10 + rng.below(30));
            }
        }

        // Contacts — the scam/phishing target inventory.
        let profile = world.view_profile(crew.id, account, now);
        report.contacts_seen = profile.contacts.len();
        now += SimDuration::from_secs(10 + rng.below(20));
        report.profiling_seconds = now.since(report.started_at).as_secs();

        if world.account_disabled(account) {
            report.interrupted = true;
            report.ended_at = now;
            return report;
        }

        // Value score: finance material dominates, contacts matter, the
        // rest is gravy (§5.2: "searches are overwhelmingly for
        // financial data").
        let value = ((finance_hits as f64 / 4.0).min(1.0)) * 0.55
            + ((report.contacts_seen as f64 / 25.0).min(1.0)) * 0.30
            + ((account_hits as f64 / 3.0).min(1.0)) * 0.10
            + ((content_hits as f64 / 5.0).min(1.0)) * 0.05;
        report.value_score = value;

        if value < self.value_threshold || profile.contacts.is_empty() {
            // Not worth it: log out and move on (the paper's abandoned
            // accounts).
            report.ended_at = now;
            return report;
        }

        // ---- Stage 3: exploitation (15–20 min, §5.3) ----
        report.exploited = true;
        let customized = rng.chance(crew.spec.customization_propensity);
        let kind = if customized {
            ExploitKind::CustomScam
        } else if rng.chance(0.28) {
            ExploitKind::PhishingBlast
        } else {
            ExploitKind::ScamBlast
        };
        report.exploit_kind = Some(kind);

        let doppelganger = doppelganger_for(&cred.address, rng);
        let n_messages: u64 = match kind {
            ExploitKind::CustomScam => 1 + rng.below(3),
            // 65% of victims see ≤5 messages.
            _ => {
                if rng.chance(0.65) {
                    1 + rng.below(5)
                } else {
                    6 + rng.below(6)
                }
            }
        };
        // Crews take the time their plan needs: the budget is drawn
        // around the §5.3 15–20 minute norm but never starves the
        // planned message count.
        let exploit_budget = rng
            .lognormal(self.mean_exploit_secs.ln(), 0.35)
            .clamp(300.0, 3600.0) as u64;
        let exploit_budget = exploit_budget.max(n_messages * 160 + 120);
        let exploit_end = now.plus(SimDuration::from_secs(exploit_budget));
        let first_name = if profile.owner_first_name.is_empty() {
            "friend".to_string()
        } else {
            profile.owner_first_name.clone()
        };

        for _ in 0..n_messages {
            if now >= exploit_end || world.account_disabled(account) {
                report.interrupted = world.account_disabled(account);
                break;
            }
            let recipients: Vec<EmailAddress> = match kind {
                ExploitKind::CustomScam => {
                    let k = 2 + rng.below(8) as usize; // < 10
                    pick(&profile.contacts, k, rng)
                }
                _ => {
                    let k = 15 + rng.below(26) as usize; // 15–40
                    pick(&profile.contacts, k, rng)
                }
            };
            if recipients.is_empty() {
                break;
            }
            report.max_recipients = report.max_recipients.max(recipients.len());
            let is_phishing = match kind {
                ExploitKind::PhishingBlast => true,
                ExploitKind::CustomScam => false,
                // Blast sessions mix in some phishing; together with the
                // dedicated phishing blasts this lands the §5.3 mix
                // (35% of hijack-sent messages are phishing).
                ExploitKind::ScamBlast => rng.chance(0.10),
            };
            let (subject, body) = if is_phishing {
                let (s, b) = mhw_phishkit::targets::lure_text(
                    mhw_types::AccountCategory::Mail,
                    mhw_phishkit::targets::LureStructure::ReplyWithCredentials,
                );
                (s, b)
            } else {
                generate_scam(
                    ScamStyle::sample(rng),
                    crew.language,
                    &first_name,
                    kind == ExploitKind::CustomScam,
                    rng,
                )
            };
            let reply_to = rng.chance(0.30).then(|| doppelganger.clone());
            world.send_mail(
                crew.id,
                account,
                recipients,
                subject,
                body,
                is_phishing,
                reply_to,
                now,
            );
            report.messages_sent += 1;
            if is_phishing {
                report.phishing_messages += 1;
            } else {
                report.scam_messages += 1;
            }
            // Blast messages are pasted from templates; customized ones
            // take real writing time.
            now += match kind {
                ExploitKind::CustomScam => SimDuration::from_secs(180 + rng.below(300)),
                _ => SimDuration::from_secs(40 + rng.below(120)),
            };
        }

        // ---- Stage 4: retention (§5.4) ----
        let t = crew.tactics;
        if !world.account_disabled(account) {
            if rng.chance(t.p_filter) {
                world.create_forward_filter(crew.id, account, doppelganger.clone(), now);
                report.retention.filter_created = true;
                now += SimDuration::from_secs(30);
            }
            if rng.chance(t.p_reply_to) {
                world.set_reply_to(crew.id, account, doppelganger.clone(), now);
                report.retention.reply_to_set = true;
                now += SimDuration::from_secs(20);
            }
            if rng.chance(t.p_password_change) {
                world.change_password(crew.id, account, now);
                report.retention.password_changed = true;
                now += SimDuration::from_secs(30);
                if rng.chance(t.p_mass_delete_given_lockout) {
                    world.mass_delete(crew.id, account, now);
                    report.retention.mass_deleted = true;
                    now += SimDuration::from_secs(120);
                }
            }
            if rng.chance(t.p_recovery_change) {
                world.change_recovery_options(crew.id, account, now);
                report.retention.recovery_options_changed = true;
                now += SimDuration::from_secs(30);
            }
            if crew.spec.uses_2fa_lockout && rng.chance(t.p_twofactor_lockout) {
                let phone = crew.burner_phone(phones, rng);
                world.enable_two_factor(crew.id, account, phone, now);
                report.retention.twofactor_locked = true;
                now += SimDuration::from_secs(60);
            }
        } else {
            report.interrupted = true;
        }

        report.ended_at = now;
        report
    }
}

/// Sample up to `k` distinct addresses.
fn pick(contacts: &[EmailAddress], k: usize, rng: &mut SimRng) -> Vec<EmailAddress> {
    let idx = rng.sample_indices(contacts.len(), k);
    idx.into_iter().map(|i| contacts[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crew::{CrewRoster, CrewSpec};
    use crate::retention::Era;
    use crate::world::ProfileView;
    use mhw_netmodel::GeoDb;
    use mhw_types::{CrewId, DeviceId, IpAddr, PageId, PhoneNumber};

    /// A mock world: one rich account, everything succeeds.
    struct MockWorld {
        contacts: usize,
        search_hits: usize,
        disabled: bool,
        wrong_password: bool,
        variant_ok: bool,
        sent: Vec<(usize, bool)>, // (recipients, is_phishing)
        password_changed: bool,
        mass_deleted: bool,
        twofactor: Option<PhoneNumber>,
        filters: usize,
        reply_to: Option<EmailAddress>,
        recovery_changed: bool,
        logins: u32,
    }

    impl MockWorld {
        fn rich() -> Self {
            MockWorld {
                contacts: 40,
                search_hits: 5,
                disabled: false,
                wrong_password: false,
                variant_ok: false,
                sent: vec![],
                password_changed: false,
                mass_deleted: false,
                twofactor: None,
                filters: 0,
                reply_to: None,
                recovery_changed: false,
                logins: 0,
            }
        }
        fn poor() -> Self {
            MockWorld { contacts: 0, search_hits: 0, ..Self::rich() }
        }
    }

    impl HijackerWorld for MockWorld {
        fn try_login(
            &mut self,
            _crew: CrewId,
            _address: &EmailAddress,
            _password: &str,
            _ip: IpAddr,
            _device: DeviceId,
            _at: SimTime,
        ) -> LoginAttemptOutcome {
            self.logins += 1;
            if self.wrong_password && _password != "<variant-correct>" {
                LoginAttemptOutcome::WrongPassword
            } else {
                LoginAttemptOutcome::Success(AccountId(0))
            }
        }
        fn variant_retry_would_succeed(&self, _a: &EmailAddress, _c: &str) -> bool {
            self.variant_ok
        }
        fn search(&mut self, _c: CrewId, _a: AccountId, _q: &str, _t: SimTime) -> usize {
            self.search_hits
        }
        fn open_folder(&mut self, _c: CrewId, _a: AccountId, _f: Folder, _t: SimTime) -> usize {
            3
        }
        fn view_profile(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) -> ProfileView {
            ProfileView {
                contacts: (0..self.contacts)
                    .map(|i| EmailAddress::new(format!("c{i}"), "homemail.com"))
                    .collect(),
                owner_first_name: "casey".into(),
            }
        }
        #[allow(clippy::too_many_arguments)]
        fn send_mail(
            &mut self,
            _c: CrewId,
            _a: AccountId,
            to: Vec<EmailAddress>,
            _s: String,
            _b: String,
            is_phishing: bool,
            _r: Option<EmailAddress>,
            _t: SimTime,
        ) {
            self.sent.push((to.len(), is_phishing));
        }
        fn create_forward_filter(&mut self, _c: CrewId, _a: AccountId, _to: EmailAddress, _t: SimTime) {
            self.filters += 1;
        }
        fn set_reply_to(&mut self, _c: CrewId, _a: AccountId, to: EmailAddress, _t: SimTime) {
            self.reply_to = Some(to);
        }
        fn change_password(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) {
            self.password_changed = true;
        }
        fn change_recovery_options(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) {
            self.recovery_changed = true;
        }
        fn enable_two_factor(&mut self, _c: CrewId, _a: AccountId, phone: PhoneNumber, _t: SimTime) {
            self.twofactor = Some(phone);
        }
        fn mass_delete(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) {
            self.mass_deleted = true;
        }
        fn proxy_exit_in(&mut self, _country: mhw_types::CountryCode) -> IpAddr {
            IpAddr::new(99, 0, 0, 1)
        }
        fn account_disabled(&self, _a: AccountId) -> bool {
            self.disabled
        }
    }

    fn crew(seed: u64) -> (CrewRoster, PhonePlan) {
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(seed);
        (
            CrewRoster::build(CrewSpec::paper_roster(), Era::Y2012, &geo, &mut rng),
            PhonePlan::new(),
        )
    }

    fn cred(exact: CredentialExactness) -> CapturedCredential {
        CapturedCredential {
            address: EmailAddress::new("victim", "homemail.com"),
            password_typed: "hunter2".into(),
            exactness: exact,
            page: PageId(0),
            captured_at: SimTime::from_secs(100),
            victim_country: None,
            is_decoy: false,
        }
    }

    #[test]
    fn rich_account_gets_exploited() {
        let (mut roster, mut phones) = crew(1);
        let mut world = MockWorld::rich();
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(2);
        let r = pb.run_session(
            &mut roster.crews[0],
            &cred(CredentialExactness::Exact),
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        assert!(r.logged_in && r.exploited);
        assert!(r.messages_sent >= 1);
        assert!(!world.sent.is_empty());
        assert!(r.value_score > pb.value_threshold);
        assert!(r.ended_at > r.started_at);
    }

    #[test]
    fn poor_account_is_abandoned_after_profiling() {
        let (mut roster, mut phones) = crew(3);
        let mut world = MockWorld::poor();
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(4);
        let r = pb.run_session(
            &mut roster.crews[0],
            &cred(CredentialExactness::Exact),
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        assert!(r.logged_in);
        assert!(!r.exploited, "value {}", r.value_score);
        assert_eq!(r.messages_sent, 0);
        assert!(r.profiling_seconds > 0);
        assert!(!r.searches.is_empty());
    }

    #[test]
    fn profiling_time_averages_three_minutes() {
        let (mut roster, mut phones) = crew(5);
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(6);
        let mut total = 0u64;
        let n = 400;
        for i in 0..n {
            let mut world = MockWorld::rich();
            let r = pb.run_session(
                &mut roster.crews[0],
                &cred(CredentialExactness::Exact),
                &mut world,
                &mut phones,
                SimTime::from_secs(1000 + i * 10_000),
                &mut rng,
            );
            total += r.profiling_seconds;
        }
        let mean_minutes = total as f64 / n as f64 / 60.0;
        assert!((2.0..5.0).contains(&mean_minutes), "mean profiling {mean_minutes} min");
    }

    #[test]
    fn wrong_garbage_password_gives_up() {
        let (mut roster, mut phones) = crew(7);
        let mut world = MockWorld { wrong_password: true, variant_ok: false, ..MockWorld::rich() };
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(8);
        let r = pb.run_session(
            &mut roster.crews[0],
            &cred(CredentialExactness::Wrong),
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        assert!(!r.logged_in);
        assert!(!r.password_eventually_correct);
        assert_eq!(r.login_attempts, 1);
    }

    #[test]
    fn trivial_variant_is_recovered_by_retries() {
        let (mut roster, mut phones) = crew(9);
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(10);
        let mut successes = 0;
        for _ in 0..50 {
            let mut world =
                MockWorld { wrong_password: true, variant_ok: true, ..MockWorld::rich() };
            let r = pb.run_session(
                &mut roster.crews[0],
                &cred(CredentialExactness::TrivialVariant),
                &mut world,
                &mut phones,
                SimTime::from_secs(1000),
                &mut rng,
            );
            if r.logged_in {
                successes += 1;
                assert!(r.login_attempts >= 2);
            }
        }
        assert!(successes >= 45, "variant retries should almost always recover: {successes}");
    }

    #[test]
    fn custom_scams_stay_under_ten_recipients() {
        let (mut roster, mut phones) = crew(11);
        // Force customization.
        roster.crews[0].spec.customization_propensity = 1.0;
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(12);
        let mut world = MockWorld::rich();
        let r = pb.run_session(
            &mut roster.crews[0],
            &cred(CredentialExactness::Exact),
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        assert_eq!(r.exploit_kind, Some(ExploitKind::CustomScam));
        for (recipients, _) in &world.sent {
            assert!(*recipients < 10, "custom scam to {recipients} recipients");
        }
    }

    #[test]
    fn disabled_account_interrupts_session() {
        let (mut roster, mut phones) = crew(13);
        let mut world = MockWorld { disabled: true, ..MockWorld::rich() };
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(14);
        let r = pb.run_session(
            &mut roster.crews[0],
            &cred(CredentialExactness::Exact),
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        // Logged in (mock allows) but interrupted before exploitation.
        assert!(r.interrupted);
        assert_eq!(r.messages_sent, 0);
    }

    #[test]
    fn era_2011_mass_deletes_era_2012_rarely() {
        let geo = GeoDb::new();
        let pb = HijackPlaybook::default();
        let mut deleted = [0usize; 2];
        for (ei, era) in [Era::Y2011, Era::Y2012].into_iter().enumerate() {
            let mut rng = SimRng::from_seed(20 + ei as u64);
            let mut roster =
                CrewRoster::build(CrewSpec::paper_roster(), era, &geo, &mut rng);
            let mut phones = PhonePlan::new();
            for i in 0..300 {
                let mut world = MockWorld::rich();
                let r = pb.run_session(
                    &mut roster.crews[0],
                    &cred(CredentialExactness::Exact),
                    &mut world,
                    &mut phones,
                    SimTime::from_secs(1000 + i * 10_000),
                    &mut rng,
                );
                if r.retention.mass_deleted {
                    deleted[ei] += 1;
                }
            }
        }
        assert!(deleted[0] > 40, "2011 deletions {deleted:?}"); // ~.6*.46*300 ≈ 83
        assert!(deleted[1] <= 6, "2012 deletions {deleted:?}"); // ~.5*.016*300 ≈ 2.4
    }

    #[test]
    fn doppelganger_addresses_are_plausible() {
        let mut rng = SimRng::from_seed(30);
        let victim = EmailAddress::new("pat.doe", "homemail.com");
        for _ in 0..50 {
            let d = doppelganger_for(&victim, &mut rng);
            assert_ne!(d, victim);
            assert!(
                d.local() == victim.local() || d.local().starts_with(victim.local()),
                "{d}"
            );
        }
    }

    #[test]
    fn session_metrics_cover_run_and_pickup_latency() {
        let (mut roster, mut phones) = crew(41);
        let mut world = MockWorld::rich();
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(42);
        // cred captured at t=100, session starts at t=1000 → 900 s pickup.
        let r = pb.run_session(
            &mut roster.crews[0],
            &cred(CredentialExactness::Exact),
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        assert!(r.exploited);
        let m = pb.metrics();
        assert_eq!(m.counter_value(M_SESSIONS_RUN), Some(1));
        assert_eq!(m.counter_value(M_SESSIONS_EXPLOITED), Some(1));
        assert_eq!(m.counter_value(M_DECOY_SESSIONS), Some(0));
        let snap = m.snapshot();
        let pickup = snap.histogram(M_PICKUP_LATENCY_SECS.name()).unwrap();
        assert_eq!(pickup.total, 1);
        assert_eq!(pickup.sum, 900);
    }

    #[test]
    fn decoy_flag_propagates() {
        let (mut roster, mut phones) = crew(31);
        let mut world = MockWorld::rich();
        let pb = HijackPlaybook::default();
        let mut rng = SimRng::from_seed(32);
        let mut c = cred(CredentialExactness::Exact);
        c.is_decoy = true;
        let r = pb.run_session(
            &mut roster.crews[0],
            &c,
            &mut world,
            &mut phones,
            SimTime::from_secs(1000),
            &mut rng,
        );
        assert!(r.was_decoy);
    }
}
