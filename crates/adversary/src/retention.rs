//! Account-retention tactics and their evolution.
//!
//! §5.4's longitudinal comparison (600 Oct-2011 cases vs 575 Nov-2012
//! cases) shows tactics responding to defender counter-moves:
//!
//! * mass email deletion after a password change: **46% → 1.6%** (the
//!   provider added content restore to recovery, so deletion stopped
//!   paying);
//! * hijacker-initiated recovery-option changes: **60% → 21%**;
//! * in the 2012 sample, **15%** of accounts had hijacker forwarding
//!   rules/filters and **26%** a hijacker Reply-To;
//! * the 2FA-lockout tactic (enrolling the crew's own burner phone)
//!   appears *only* in the 2012 era, briefly, and only among the
//!   African crews (§7: China/Malaysia "didn't try to use second factor
//!   enabling").

use serde::{Deserialize, Serialize};

/// Which behavioural era a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Era {
    /// October 2011: aggressive lockout, mass deletion pays off.
    Y2011,
    /// November 2012: deletion abandoned, stealth tactics and the brief
    /// 2FA-lockout experiment.
    Y2012,
}

/// Per-era tactic probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionTactics {
    /// P(change the password) — the basic lockout.
    pub p_password_change: f64,
    /// P(change recovery options) given the crew exploits the account.
    pub p_recovery_change: f64,
    /// P(mass-delete mail and contacts | password changed).
    pub p_mass_delete_given_lockout: f64,
    /// P(install a forwarding/hiding filter).
    pub p_filter: f64,
    /// P(set a doppelganger Reply-To).
    pub p_reply_to: f64,
    /// P(attempt the 2FA lockout with a burner phone) — 2012-only, and
    /// only for crews whose `uses_2fa_lockout` flag is set.
    pub p_twofactor_lockout: f64,
}

impl RetentionTactics {
    /// Tactics for an era, calibrated to §5.4.
    pub fn for_era(era: Era) -> Self {
        match era {
            Era::Y2011 => RetentionTactics {
                p_password_change: 0.60,
                p_recovery_change: 0.60,
                p_mass_delete_given_lockout: 0.46,
                p_filter: 0.05,
                p_reply_to: 0.10,
                p_twofactor_lockout: 0.0,
            },
            Era::Y2012 => RetentionTactics {
                p_password_change: 0.50,
                p_recovery_change: 0.21,
                p_mass_delete_given_lockout: 0.016,
                p_filter: 0.15,
                p_reply_to: 0.26,
                p_twofactor_lockout: 0.08,
            },
        }
    }
}

/// What a crew actually did to one account (per-incident ground truth
/// for the §5.4 measurements).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionReport {
    /// The crew changed the password (the §5.4 lockout).
    pub password_changed: bool,
    /// The crew changed recovery phone/email.
    pub recovery_options_changed: bool,
    /// The crew mass-deleted the mailbox.
    pub mass_deleted: bool,
    /// The crew installed a forwarding/hiding filter.
    pub filter_created: bool,
    /// The crew set a doppelganger Reply-To.
    pub reply_to_set: bool,
    /// The crew enrolled 2FA on a burner phone (2012 tactic).
    pub twofactor_locked: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_2011_deletes_era_2012_does_not() {
        let t11 = RetentionTactics::for_era(Era::Y2011);
        let t12 = RetentionTactics::for_era(Era::Y2012);
        assert!((t11.p_mass_delete_given_lockout - 0.46).abs() < 1e-9);
        assert!((t12.p_mass_delete_given_lockout - 0.016).abs() < 1e-9);
        assert!(t11.p_mass_delete_given_lockout > 20.0 * t12.p_mass_delete_given_lockout);
    }

    #[test]
    fn recovery_change_drops_60_to_21() {
        assert!((RetentionTactics::for_era(Era::Y2011).p_recovery_change - 0.60).abs() < 1e-9);
        assert!((RetentionTactics::for_era(Era::Y2012).p_recovery_change - 0.21).abs() < 1e-9);
    }

    #[test]
    fn stealth_tactics_rise_in_2012() {
        let t11 = RetentionTactics::for_era(Era::Y2011);
        let t12 = RetentionTactics::for_era(Era::Y2012);
        assert!(t12.p_filter > t11.p_filter);
        assert!(t12.p_reply_to > t11.p_reply_to);
        assert!((t12.p_filter - 0.15).abs() < 1e-9);
        assert!((t12.p_reply_to - 0.26).abs() < 1e-9);
    }

    #[test]
    fn twofactor_lockout_is_2012_only() {
        assert_eq!(RetentionTactics::for_era(Era::Y2011).p_twofactor_lockout, 0.0);
        assert!(RetentionTactics::for_era(Era::Y2012).p_twofactor_lockout > 0.0);
    }
}
