//! Automated-hijacking baseline (the taxonomy contrast).
//!
//! §2's Figure 1 positions manual hijacking against *automated*
//! hijacking: botnets compromising "large quantities of accounts …
//! carried out entirely by automated tools that monetize the most common
//! resources across all compromised accounts (e.g. spamming via a
//! victim's email)". The baseline bot exists so the taxonomy experiment
//! can quantify the volume-vs-depth trade-off and so defense ablations
//! can show which signals catch bots but miss crews (per-IP fan-out
//! being the canonical example).

use crate::world::{HijackerWorld, LoginAttemptOutcome};
use mhw_simclock::SimRng;
use mhw_types::{AccountId, CrewId, DeviceId, EmailAddress, IpAddr, SimDuration, SimTime};

/// A botnet node usable for credential stuffing + spam blasting.
#[derive(Debug, Clone)]
pub struct SpamBot {
    /// Ground-truth id used for log labelling (bots log as
    /// `Actor::Bot`, but the world interface keys on `CrewId`; the
    /// orchestrator maps this id to the Bot actor).
    pub id: CrewId,
    /// Exit IPs (botnets burn through few IPs for many accounts —
    /// the opposite discipline of manual crews).
    pub ips: Vec<IpAddr>,
    /// Spam messages per compromised account.
    pub spam_per_account: u32,
    /// Recipients per spam message.
    pub recipients_per_message: usize,
}

/// Outcome summary for one automated campaign.
#[derive(Debug, Clone, Default)]
pub struct BotCampaignReport {
    /// Credential stuffing attempts made.
    pub attempts: u32,
    /// Accounts successfully logged into.
    pub compromised: u32,
    /// Spam messages blasted from compromised accounts.
    pub messages_sent: u32,
}

impl SpamBot {
    /// Stuff `credentials` (address, password) pairs as fast as possible
    /// and blast spam from each success. No profiling, no retention, no
    /// discipline — the automated half of Figure 1.
    pub fn run_campaign(
        &self,
        credentials: &[(EmailAddress, String)],
        world: &mut dyn HijackerWorld,
        start: SimTime,
        rng: &mut SimRng,
    ) -> BotCampaignReport {
        let mut report = BotCampaignReport::default();
        let mut now = start;
        for (i, (address, password)) in credentials.iter().enumerate() {
            // One IP serves hundreds of accounts.
            let ip = self.ips[i % self.ips.len().max(1)];
            report.attempts += 1;
            let outcome =
                world.try_login(self.id, address, password, ip, DeviceId(9_000_000), now);
            now += SimDuration::from_secs(1 + rng.below(3)); // machine speed
            if let LoginAttemptOutcome::Success(account) = outcome {
                report.compromised += 1;
                self.blast(account, world, &mut now, rng);
                report.messages_sent += self.spam_per_account;
            }
        }
        report
    }

    fn blast(
        &self,
        account: AccountId,
        world: &mut dyn HijackerWorld,
        now: &mut SimTime,
        rng: &mut SimRng,
    ) {
        for _ in 0..self.spam_per_account {
            let recipients: Vec<EmailAddress> = (0..self.recipients_per_message)
                .map(|j| EmailAddress::new(format!("target{}", rng.below(1 << 24) + j as u64), "elsewhere.net"))
                .collect();
            world.send_mail(
                self.id,
                account,
                recipients,
                "Amazing offer inside".to_string(),
                "buy cheap meds at http://spam.example/pharma".to_string(),
                false,
                None,
                *now,
            );
            *now += SimDuration::from_secs(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Folder, ProfileView};
    use mhw_types::PhoneNumber;

    struct CountingWorld {
        logins: Vec<IpAddr>,
        sends: u32,
        accept: bool,
    }

    impl HijackerWorld for CountingWorld {
        fn try_login(
            &mut self,
            _c: CrewId,
            _a: &EmailAddress,
            _p: &str,
            ip: IpAddr,
            _d: DeviceId,
            _t: SimTime,
        ) -> LoginAttemptOutcome {
            self.logins.push(ip);
            if self.accept {
                LoginAttemptOutcome::Success(AccountId(self.logins.len() as u32))
            } else {
                LoginAttemptOutcome::Blocked
            }
        }
        fn variant_retry_would_succeed(&self, _a: &EmailAddress, _c: &str) -> bool {
            false
        }
        fn search(&mut self, _c: CrewId, _a: AccountId, _q: &str, _t: SimTime) -> usize {
            0
        }
        fn open_folder(&mut self, _c: CrewId, _a: AccountId, _f: Folder, _t: SimTime) -> usize {
            0
        }
        fn view_profile(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) -> ProfileView {
            ProfileView::default()
        }
        #[allow(clippy::too_many_arguments)]
        fn send_mail(
            &mut self,
            _c: CrewId,
            _a: AccountId,
            _to: Vec<EmailAddress>,
            _s: String,
            _b: String,
            _p: bool,
            _r: Option<EmailAddress>,
            _t: SimTime,
        ) {
            self.sends += 1;
        }
        fn create_forward_filter(&mut self, _c: CrewId, _a: AccountId, _to: EmailAddress, _t: SimTime) {}
        fn set_reply_to(&mut self, _c: CrewId, _a: AccountId, _to: EmailAddress, _t: SimTime) {}
        fn change_password(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) {}
        fn change_recovery_options(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) {}
        fn enable_two_factor(&mut self, _c: CrewId, _a: AccountId, _p: PhoneNumber, _t: SimTime) {}
        fn mass_delete(&mut self, _c: CrewId, _a: AccountId, _t: SimTime) {}
        fn proxy_exit_in(&mut self, _country: mhw_types::CountryCode) -> IpAddr {
            IpAddr::new(99, 0, 0, 2)
        }
        fn account_disabled(&self, _a: AccountId) -> bool {
            false
        }
    }

    fn bot() -> SpamBot {
        SpamBot {
            id: CrewId(99),
            ips: vec![IpAddr::new(50, 0, 0, 1), IpAddr::new(50, 0, 0, 2)],
            spam_per_account: 5,
            recipients_per_message: 50,
        }
    }

    fn creds(n: usize) -> Vec<(EmailAddress, String)> {
        (0..n)
            .map(|i| (EmailAddress::new(format!("v{i}"), "homemail.com"), "pw".to_string()))
            .collect()
    }

    #[test]
    fn bot_reuses_few_ips_for_many_accounts() {
        let mut world = CountingWorld { logins: vec![], sends: 0, accept: true };
        let mut rng = SimRng::from_seed(1);
        let report = bot().run_campaign(&creds(100), &mut world, SimTime::EPOCH, &mut rng);
        assert_eq!(report.attempts, 100);
        assert_eq!(report.compromised, 100);
        let distinct: std::collections::HashSet<_> = world.logins.iter().collect();
        // 100 accounts over 2 IPs — 50 accounts/IP, vs the crews' ≤10.
        assert_eq!(distinct.len(), 2);
        assert_eq!(world.sends, 500);
    }

    #[test]
    fn blocked_bot_sends_nothing() {
        let mut world = CountingWorld { logins: vec![], sends: 0, accept: false };
        let mut rng = SimRng::from_seed(2);
        let report = bot().run_campaign(&creds(20), &mut world, SimTime::EPOCH, &mut rng);
        assert_eq!(report.compromised, 0);
        assert_eq!(world.sends, 0);
    }
}
