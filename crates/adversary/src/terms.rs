//! Hijacker search terms (Table 3).
//!
//! "We found out that hijackers mainly look for financial data …,
//! linked account credentials …, and personal material that might be
//! sold or used for blackmail." Table 3 gives the top terms per
//! category with frequencies; searches are "overwhelmingly for
//! financial data". The printed table is partially garbled in the
//! source text; the frequencies below follow its unambiguous structure
//! (finance ≫ account ≈ content, `wire transfer` at 14.4% on top) and
//! are documented in DESIGN.md.

use mhw_simclock::SimRng;
use mhw_types::Language;
use serde::{Deserialize, Serialize};

/// The three Table 3 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermCategory {
    /// Financial standing: wire transfers, bank statements.
    Finance,
    /// Credentials for other accounts the victim holds.
    Account,
    /// Personal content usable for extortion.
    Content,
}

/// Finance terms with Table 3 weights. Non-English entries reflect the
/// paper's observation that "some searches were performed in Spanish
/// and Chinese".
const FINANCE: [(&str, f64); 9] = [
    ("wire transfer", 14.4),
    ("bank transfer", 11.9),
    ("bank", 6.2),
    ("transfer", 5.2),
    ("wire", 4.7),
    ("transferencia", 4.6),
    ("investment", 3.4),
    ("banco", 3.0),
    ("账单", 1.9),
];

const ACCOUNT: [(&str, f64); 9] = [
    ("password", 0.6),
    ("amazon", 0.4),
    ("dropbox", 0.3),
    ("paypal", 0.3),
    ("match", 0.1),
    ("ftp", 0.1),
    ("facebook", 0.1),
    ("skype", 0.1),
    ("username", 0.1),
];

const CONTENT: [(&str, f64); 9] = [
    ("jpg", 0.2),
    ("mov", 0.2),
    ("mp4", 0.2),
    ("3gp", 0.1),
    ("passport", 0.1),
    ("sex", 0.1),
    ("filename:(jpg or jpeg or png)", 0.1),
    ("is:starred", 0.1),
    ("zip", 0.1),
];

/// The search-term sampler.
#[derive(Debug, Clone, Default)]
pub struct SearchTermModel;

impl SearchTermModel {
    /// The Table 3 sampler (stateless).
    pub fn new() -> Self {
        SearchTermModel
    }

    /// All `(term, weight, category)` triples.
    pub fn all_terms(&self) -> Vec<(&'static str, f64, TermCategory)> {
        FINANCE
            .iter()
            .map(|(t, w)| (*t, *w, TermCategory::Finance))
            .chain(ACCOUNT.iter().map(|(t, w)| (*t, *w, TermCategory::Account)))
            .chain(CONTENT.iter().map(|(t, w)| (*t, *w, TermCategory::Content)))
            .collect()
    }

    /// Draw one search term. `language` biases towards the crew's
    /// working language: Spanish-speaking crews prefer `transferencia`
    /// and `banco`, Chinese-speaking crews `账单` (§5.2/§7 consistency).
    pub fn sample(&self, language: Language, rng: &mut SimRng) -> &'static str {
        let terms = self.all_terms();
        let weights: Vec<f64> = terms
            .iter()
            .map(|(t, w, _)| {
                let is_spanish = matches!(*t, "transferencia" | "banco");
                let is_chinese = *t == "账单";
                let boost = match language {
                    Language::Spanish if is_spanish => 8.0,
                    Language::Chinese if is_chinese => 20.0,
                    // Non-matching language: still possible (shared
                    // tooling, §5.5), but rare.
                    Language::Spanish | Language::Chinese => 1.0,
                    _ if is_spanish || is_chinese => 0.15,
                    _ => 1.0,
                };
                w * boost
            })
            .collect();
        let i = rng.weighted_index(&weights).expect("weights positive");
        terms[i].0
    }

    /// Category of a term (None if unknown).
    pub fn category_of(&self, term: &str) -> Option<TermCategory> {
        self.all_terms()
            .into_iter()
            .find(|(t, _, _)| *t == term)
            .map(|(_, _, c)| c)
    }

    /// Expected fraction of finance-category draws for English crews —
    /// used by calibration tests (the paper: searches are
    /// "overwhelmingly for financial data").
    pub fn finance_mass_fraction(&self) -> f64 {
        let fin: f64 = FINANCE.iter().map(|(_, w)| w).sum();
        let all: f64 = self.all_terms().iter().map(|(_, w, _)| w).sum();
        fin / all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finance_dominates() {
        let m = SearchTermModel::new();
        assert!(m.finance_mass_fraction() > 0.9, "{}", m.finance_mass_fraction());
    }

    #[test]
    fn top_term_is_wire_transfer() {
        let m = SearchTermModel::new();
        let mut rng = SimRng::from_seed(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(m.sample(Language::English, &mut rng)).or_insert(0usize) += 1;
        }
        let top = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_eq!(*top.0, "wire transfer");
    }

    #[test]
    fn spanish_crews_prefer_spanish_terms() {
        let m = SearchTermModel::new();
        let mut rng = SimRng::from_seed(2);
        let n = 20_000;
        let spanish = (0..n)
            .filter(|_| {
                matches!(m.sample(Language::Spanish, &mut rng), "transferencia" | "banco")
            })
            .count() as f64
            / n as f64;
        let mut rng2 = SimRng::from_seed(3);
        let english_spanish = (0..n)
            .filter(|_| {
                matches!(m.sample(Language::English, &mut rng2), "transferencia" | "banco")
            })
            .count() as f64
            / n as f64;
        assert!(spanish > 0.35, "spanish crews use spanish terms: {spanish}");
        assert!(english_spanish < 0.05, "english crews rarely do: {english_spanish}");
    }

    #[test]
    fn chinese_crews_search_zhangdan() {
        let m = SearchTermModel::new();
        let mut rng = SimRng::from_seed(4);
        let n = 20_000;
        let zh = (0..n)
            .filter(|_| m.sample(Language::Chinese, &mut rng) == "账单")
            .count() as f64
            / n as f64;
        assert!(zh > 0.25, "chinese crews search 账单: {zh}");
    }

    #[test]
    fn categories_resolve() {
        let m = SearchTermModel::new();
        assert_eq!(m.category_of("wire transfer"), Some(TermCategory::Finance));
        assert_eq!(m.category_of("password"), Some(TermCategory::Account));
        assert_eq!(m.category_of("is:starred"), Some(TermCategory::Content));
        assert_eq!(m.category_of("lunch"), None);
    }

    #[test]
    fn table3_has_27_terms() {
        assert_eq!(SearchTermModel::new().all_terms().len(), 27);
    }
}
