//! The crew's interface to the ecosystem.
//!
//! Crews act on the world only through [`HijackerWorld`]; `mhw-core`
//! implements it over the real substrates (login pipeline, mail
//! provider, identity stores), and the playbook unit tests implement it
//! with a mock. The interface intentionally exposes *only* what a
//! logged-in webmail user could do — crews have no magic powers.

use mhw_types::{
    AccountId, CrewId, DeviceId, EmailAddress, IpAddr, PhoneNumber, SimTime,
};

/// Result of a login attempt as the crew perceives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoginAttemptOutcome {
    /// Logged in.
    Success(AccountId),
    /// Password rejected.
    WrongPassword,
    /// Redirected to a challenge and failed it.
    ChallengeFailed,
    /// Hard blocked (or account disabled by anti-abuse).
    Blocked,
    /// The target address is not an account at this provider.
    NoSuchAccount,
}

/// Mailbox folders the playbook opens (re-exported to avoid a direct
/// mailsys dependency in the trait's consumers).
pub use mhw_mailsys::Folder;

/// What the crew reads off the account while profiling.
#[derive(Debug, Clone, Default)]
pub struct ProfileView {
    /// Contacts visible in the account (addresses; internal flag kept
    /// opaque to the crew).
    pub contacts: Vec<EmailAddress>,
    /// First names the crew can glean for personalization.
    pub owner_first_name: String,
}

/// Everything a crew can do to the ecosystem.
pub trait HijackerWorld {
    /// Attempt a login with a literal password string.
    #[allow(clippy::too_many_arguments)]
    fn try_login(
        &mut self,
        crew: CrewId,
        address: &EmailAddress,
        password: &str,
        ip: IpAddr,
        device: DeviceId,
        at: SimTime,
    ) -> LoginAttemptOutcome;

    /// Whether a retry with a trivial password variant would succeed
    /// (the simulator adjudicates §5.1's variant retries; the crew
    /// only knows its captured string).
    fn variant_retry_would_succeed(&self, address: &EmailAddress, captured: &str) -> bool;

    /// Search the mailbox; returns the number of hits.
    fn search(&mut self, crew: CrewId, account: AccountId, query: &str, at: SimTime) -> usize;

    /// Open a folder view; returns the number of messages shown.
    fn open_folder(&mut self, crew: CrewId, account: AccountId, folder: Folder, at: SimTime)
        -> usize;

    /// Read the contact list and owner metadata.
    fn view_profile(&mut self, crew: CrewId, account: AccountId, at: SimTime) -> ProfileView;

    /// Send mail from the account. `reply_to` optionally diverts replies
    /// to a doppelganger.
    #[allow(clippy::too_many_arguments)]
    fn send_mail(
        &mut self,
        crew: CrewId,
        account: AccountId,
        to: Vec<EmailAddress>,
        subject: String,
        body: String,
        is_phishing: bool,
        reply_to: Option<EmailAddress>,
        at: SimTime,
    );

    /// Install a forward-all filter to `to`.
    fn create_forward_filter(
        &mut self,
        crew: CrewId,
        account: AccountId,
        to: EmailAddress,
        at: SimTime,
    );

    /// Set the account-level Reply-To.
    fn set_reply_to(&mut self, crew: CrewId, account: AccountId, to: EmailAddress, at: SimTime);

    /// Change the password (lockout).
    fn change_password(&mut self, crew: CrewId, account: AccountId, at: SimTime);

    /// Clear/replace recovery options (delay recovery).
    fn change_recovery_options(&mut self, crew: CrewId, account: AccountId, at: SimTime);

    /// Enable 2FA with a crew burner phone (the 2012 lockout tactic).
    fn enable_two_factor(
        &mut self,
        crew: CrewId,
        account: AccountId,
        phone: PhoneNumber,
        at: SimTime,
    );

    /// Mass-delete mailbox content and contacts.
    fn mass_delete(&mut self, crew: CrewId, account: AccountId, at: SimTime);

    /// Rent a cloaking-proxy exit located in `country` (§8.1: crews
    /// have "some additional knowledge of using IP cloaking services").
    /// Each call may return a fresh address.
    fn proxy_exit_in(&mut self, country: mhw_types::CountryCode) -> IpAddr;

    /// Whether the provider's anti-abuse systems have disabled the
    /// account (ends the session early).
    fn account_disabled(&self, account: AccountId) -> bool;
}
