//! # mhw-adversary
//!
//! Manual-hijacking crews — the behavioural heart of the reproduction.
//!
//! §5.5 ("Manual Hijacking — an Ordinary Office Job?") observed crews
//! that start at the same time every day, share a one-hour lunch break,
//! rest on weekends, follow a common playbook and share resources. This
//! crate models exactly that:
//!
//! * [`crew`] — organized groups with a home country, office-hours
//!   schedule, proxy pool (per-IP discipline: §5.1's ~9.6 accounts/IP/
//!   day), burner phones, and an era-dependent tactics profile;
//! * [`terms`] — the Table 3 search-term distribution used during
//!   account value assessment;
//! * [`scamgen`] — scam text generation instantiating the five
//!   principles of §5.3 (credible story, sympathy, limited-risk framing,
//!   anti-verification, untraceable transfer), localized to the crew's
//!   working language;
//! * [`retention`] — era-dependent account-retention tactics (lockout,
//!   recovery-option changes, mass deletion, filters, Reply-To,
//!   doppelgangers, the short-lived 2012 2FA lockout);
//! * [`playbook`] — the per-credential hijack session state machine:
//!   login (with trivial-variant retries) → ~3-minute value assessment →
//!   exploit or abandon → retention → logout;
//! * [`automation`] — the automated (botnet) hijacking baseline used by
//!   the Figure 1 taxonomy comparison;
//! * [`pivot`] — the recovery-pivot playbook: crews stopped by the
//!   login challenge filing "forgot password" claims with harvested
//!   personal data;
//! * [`world`] — the [`HijackerWorld`] trait
//!   through which crews act on the ecosystem, implemented by
//!   `mhw-core` (and by mocks in tests).

#![deny(missing_docs)]

pub mod automation;
pub mod crew;
pub mod pivot;
pub mod playbook;
pub mod retention;
pub mod scamgen;
pub mod terms;
pub mod world;

pub use crew::{Crew, CrewRoster, CrewSpec};
pub use pivot::{plan_pivot, PivotPlan};
pub use playbook::{ExploitKind, HijackPlaybook, SessionReport};
pub use retention::{Era, RetentionReport, RetentionTactics};
pub use scamgen::{generate_scam, ScamStyle};
pub use terms::{SearchTermModel, TermCategory};
pub use world::{HijackerWorld, LoginAttemptOutcome, ProfileView};
