//! Crews: organized manual-hijacking groups.
//!
//! Calibrated to §5.5 and §7: crews keep office hours in their home
//! timezone, share tooling, and practice per-IP discipline — "on
//! average, the hijackers attempted to access only 9.6 distinct accounts
//! from each IP" (§5.1), "consistently under 10", strongly suggesting
//! "established guidelines to avoid detection". The roster reproduces
//! the paper's attribution picture: Nigerian and Ivorian crews dominate
//! the phone dataset (Figure 12), while login IPs skew to China and
//! Malaysia (Figure 11) — partly crews based there, partly African crews
//! exiting through Asian proxies (§7 explicitly cannot tell the two
//! apart, and neither can our measurement pipeline).

use crate::retention::{Era, RetentionTactics};
use mhw_netmodel::{GeoDb, PhonePlan, ProxyPool};
use mhw_phishkit::Dropbox;
use mhw_simclock::{Schedule, SimRng};
use mhw_types::{CountryCode, CrewId, DeviceId, IpAddr, Language, PhoneNumber, SimTime};

/// Static description of a crew.
#[derive(Debug, Clone)]
pub struct CrewSpec {
    /// The crew's operating country (Figure 12's origin mix).
    pub home: CountryCode,
    /// Share of global manual-hijacking volume.
    pub weight: f64,
    /// Fraction of exits that are foreign proxies.
    pub proxy_fraction: f64,
    /// Countries the proxy exits sit in.
    pub proxy_countries: Vec<CountryCode>,
    /// Whether this crew experimented with the 2012 2FA lockout.
    pub uses_2fa_lockout: bool,
    /// Propensity to write customized (≤10-recipient) scams.
    pub customization_propensity: f64,
    /// Probability of logging in through a rented proxy in the
    /// *victim's* country (blending with organic traffic, §5.1/§8.1).
    pub geo_match_propensity: f64,
    /// Exit-pool size.
    pub pool_size: usize,
}

impl CrewSpec {
    /// The paper-calibrated roster (§7, Figures 11–12).
    pub fn paper_roster() -> Vec<CrewSpec> {
        let spec = |home: CountryCode,
                    weight: f64,
                    proxy_fraction: f64,
                    proxy_countries: Vec<CountryCode>,
                    uses_2fa_lockout: bool| CrewSpec {
            home,
            weight,
            proxy_fraction,
            proxy_countries,
            uses_2fa_lockout,
            customization_propensity: 0.06,
            geo_match_propensity: 0.30,
            pool_size: 40,
        };
        vec![
            spec(CountryCode::NG, 0.26, 0.55, vec![CountryCode::CN, CountryCode::MY], true),
            spec(CountryCode::CI, 0.24, 0.55, vec![CountryCode::CN, CountryCode::MY], true),
            spec(CountryCode::ZA, 0.10, 0.10, vec![CountryCode::CN], true),
            spec(CountryCode::CN, 0.14, 0.0, vec![], false),
            spec(CountryCode::MY, 0.08, 0.0, vec![], false),
            spec(CountryCode::VE, 0.08, 0.0, vec![], false),
            spec(CountryCode::VN, 0.04, 0.0, vec![], false),
            spec(CountryCode::ML, 0.04, 0.30, vec![CountryCode::CN], true),
            spec(CountryCode::IN, 0.02, 0.0, vec![], false),
        ]
    }
}

/// Per-day IP rotation state (the §5.1 discipline).
#[derive(Debug, Clone, Default)]
struct IpDiscipline {
    day: u64,
    rotation: u64,
    accounts_on_current: u32,
    cap_for_current: u32,
}

/// A live crew.
#[derive(Clone)]
pub struct Crew {
    /// Stable crew identity.
    pub id: CrewId,
    /// The static description this crew was built from.
    pub spec: CrewSpec,
    /// Office-hours working schedule (§5.5).
    pub schedule: Schedule,
    /// The crew's exit-IP pool.
    pub pool: ProxyPool,
    /// Where phished credentials land for pickup.
    pub dropbox: Dropbox,
    /// Era-dependent retention tactics profile.
    pub tactics: RetentionTactics,
    /// Language the crew writes scams and searches in.
    pub language: Language,
    /// Device identity of the crew's tooling (shared utilities, §5.5 —
    /// one device id per crew, rotated rarely).
    pub device: DeviceId,
    discipline: IpDiscipline,
    burner_phones: Vec<PhoneNumber>,
}

/// Per-IP account cap: "consistently under 10".
const IP_CAP_MIN: u32 = 8;
const IP_CAP_MAX: u32 = 10;

impl Crew {
    /// The exit IP to use for the next *new* account on `day`,
    /// advancing the rotation when the per-IP cap is reached.
    pub fn exit_for_new_account(&mut self, day: u64, rng: &mut SimRng) -> IpAddr {
        let d = &mut self.discipline;
        if d.day != day {
            d.day = day;
            d.rotation += 1;
            d.accounts_on_current = 0;
            d.cap_for_current = IP_CAP_MIN + rng.below((IP_CAP_MAX - IP_CAP_MIN + 1) as u64) as u32;
        }
        if d.accounts_on_current >= d.cap_for_current {
            d.rotation += 1;
            d.accounts_on_current = 0;
            d.cap_for_current = IP_CAP_MIN + rng.below((IP_CAP_MAX - IP_CAP_MIN + 1) as u64) as u32;
        }
        d.accounts_on_current += 1;
        self.pool.rotate(d.rotation).0
    }

    /// The current exit without starting a new account (retries reuse
    /// the same IP).
    pub fn current_exit(&self) -> IpAddr {
        self.pool.rotate(self.discipline.rotation).0
    }

    /// Issue (or reuse) a burner phone for the 2FA-lockout tactic.
    /// Crews "shared certain resources such as phone numbers" (§5.5),
    /// so a small pool is reused across incidents.
    pub fn burner_phone(&mut self, phones: &mut PhonePlan, rng: &mut SimRng) -> PhoneNumber {
        if self.burner_phones.len() < 4 || rng.chance(0.4) {
            let p = phones.issue(self.spec.home, rng);
            self.burner_phones.push(p);
            p
        } else {
            *rng.choose(&self.burner_phones).expect("non-empty")
        }
    }

    /// Whether the crew is at its desks at `t`.
    pub fn is_working(&self, t: SimTime) -> bool {
        self.schedule.is_active(t)
    }
}

/// All crews in a scenario.
#[derive(Clone)]
pub struct CrewRoster {
    /// Crews in spec order; index = `CrewId::index()`.
    pub crews: Vec<Crew>,
}

impl CrewRoster {
    /// Build the roster from specs.
    pub fn build(specs: Vec<CrewSpec>, era: Era, geo: &GeoDb, rng: &mut SimRng) -> Self {
        let crews = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let pool = ProxyPool::build(
                    geo,
                    spec.home,
                    &spec.proxy_countries,
                    spec.proxy_fraction,
                    spec.pool_size,
                    rng,
                );
                let id = CrewId::from_index(i);
                Crew {
                    id,
                    schedule: Schedule::crew(spec.home.utc_offset_hours()),
                    pool,
                    dropbox: Dropbox::new(id),
                    tactics: RetentionTactics::for_era(era),
                    language: spec.home.language(),
                    device: DeviceId(1_000_000 + i as u32),
                    discipline: IpDiscipline::default(),
                    burner_phones: Vec::new(),
                    spec,
                }
            })
            .collect();
        CrewRoster { crews }
    }

    /// Draw a crew index by volume weight.
    pub fn sample_crew(&self, rng: &mut SimRng) -> usize {
        let weights: Vec<f64> = self.crews.iter().map(|c| c.spec.weight).collect();
        rng.weighted_index(&weights).expect("roster non-empty")
    }

    /// The crew with identity `id`.
    pub fn get(&self, id: CrewId) -> &Crew {
        &self.crews[id.index()]
    }

    /// Mutable access to the crew with identity `id`.
    pub fn get_mut(&mut self, id: CrewId) -> &mut Crew {
        &mut self.crews[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster(seed: u64) -> CrewRoster {
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(seed);
        CrewRoster::build(CrewSpec::paper_roster(), Era::Y2012, &geo, &mut rng)
    }

    #[test]
    fn roster_weights_sum_to_one() {
        let total: f64 = CrewSpec::paper_roster().iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn african_crews_use_2fa_lockout_asian_do_not() {
        for s in CrewSpec::paper_roster() {
            match s.home {
                CountryCode::NG | CountryCode::CI | CountryCode::ZA | CountryCode::ML => {
                    assert!(s.uses_2fa_lockout, "{:?}", s.home)
                }
                CountryCode::CN | CountryCode::MY | CountryCode::VE | CountryCode::VN => {
                    assert!(!s.uses_2fa_lockout, "{:?}", s.home)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ip_discipline_stays_under_cap() {
        let mut r = roster(1);
        let mut rng = SimRng::from_seed(2);
        let crew = &mut r.crews[0];
        let mut per_ip: std::collections::HashMap<IpAddr, u32> = Default::default();
        for _ in 0..100 {
            let ip = crew.exit_for_new_account(5, &mut rng);
            *per_ip.entry(ip).or_insert(0) += 1;
        }
        for (ip, n) in &per_ip {
            assert!(*n <= IP_CAP_MAX, "{ip} used for {n} accounts");
        }
        // Average near the paper's 9.6.
        let avg = 100.0 / per_ip.len() as f64;
        assert!((8.0..=10.0).contains(&avg), "avg accounts/IP {avg}");
    }

    #[test]
    fn rotation_advances_across_days() {
        let mut r = roster(3);
        let mut rng = SimRng::from_seed(4);
        let crew = &mut r.crews[0];
        let ip_day1 = crew.exit_for_new_account(1, &mut rng);
        let ip_day2 = crew.exit_for_new_account(2, &mut rng);
        // Pool has 40 exits; consecutive rotations give different IPs.
        assert_ne!(ip_day1, ip_day2);
        assert_eq!(crew.current_exit(), ip_day2);
    }

    #[test]
    fn schedules_follow_home_timezone() {
        let r = roster(5);
        let cn = r.crews.iter().find(|c| c.spec.home == CountryCode::CN).unwrap();
        let ci = r.crews.iter().find(|c| c.spec.home == CountryCode::CI).unwrap();
        // Monday 02:00 UTC = 10:00 in China (working), 02:00 in CI (not).
        let t = SimTime::from_secs(2 * 3600);
        assert!(cn.is_working(t));
        assert!(!ci.is_working(t));
    }

    #[test]
    fn burner_phones_come_from_home_country_and_are_shared() {
        let mut r = roster(6);
        let mut phones = PhonePlan::new();
        let mut rng = SimRng::from_seed(7);
        let crew = r.crews.iter_mut().find(|c| c.spec.home == CountryCode::NG).unwrap();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..40 {
            let p = crew.burner_phone(&mut phones, &mut rng);
            assert_eq!(p.country(), Some(CountryCode::NG));
            distinct.insert(p);
        }
        // Shared pool: far fewer distinct numbers than uses.
        assert!(distinct.len() < 30, "{} distinct numbers", distinct.len());
        assert!(distinct.len() >= 4);
    }

    #[test]
    fn crew_sampling_tracks_weights() {
        let r = roster(8);
        let mut rng = SimRng::from_seed(9);
        let mut counts = vec![0usize; r.crews.len()];
        for _ in 0..20_000 {
            counts[r.sample_crew(&mut rng)] += 1;
        }
        // NG (weight .26) drawn far more than IN (weight .02).
        assert!(counts[0] > 8 * counts[8], "{counts:?}");
    }
}
