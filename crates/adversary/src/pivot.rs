//! The recovery-pivot playbook: when the login challenge stops a crew
//! that *knows* it holds a working password, the crew does not always
//! walk away — it pivots to the "forgot password" flow armed with
//! harvested personal data (the manual-hijacking analogue of the
//! recovery attacks in the related literature; see PAPERS.md).
//!
//! The pivot is a *plan*, not an outcome: this module decides whether a
//! crew bothers and how well-researched the attempt is. Whether the
//! claim actually takes the account over is decided by the recovery
//! pipeline (`mhw-recovery`) against the account's real weak spots and
//! the provider's configured `RecoveryPosture`.

use crate::crew::Crew;
use mhw_simclock::SimRng;

/// One planned recovery-pivot attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PivotPlan {
    /// How much harvested personal data backs the claim, in `[0, 1]`:
    /// answers to likely secret questions, birthdays, contact names for
    /// the manual-review story. Scales the takeover probability the
    /// recovery pipeline computes.
    pub research_quality: f64,
}

/// Decide whether `crew` pivots a challenge-blocked credential into a
/// recovery claim, and with how much preparation.
///
/// Professional crews treat hijacking as a day job (§5.5) and a
/// credential that typed correctly but hit a challenge is sunk cost
/// worth a second route; still, research takes operator minutes, so
/// not every blocked credential is pivoted. Crews with higher
/// customization propensity — the ones already doing per-victim
/// research for ≤10-recipient scams (§5.3) — pivot more and research
/// better.
///
/// Draws from `rng` only when called; callers gate the call on the
/// scenario's `adversary_pivot` switch so legacy worlds never consume
/// these draws.
pub fn plan_pivot(crew: &Crew, rng: &mut SimRng) -> Option<PivotPlan> {
    let propensity = (0.45 + 2.0 * crew.spec.customization_propensity).clamp(0.0, 0.95);
    if !rng.chance(propensity) {
        return None;
    }
    let base = 0.35 + 0.5 * (rng.below(1000) as f64 / 1000.0);
    let research_quality = (base + crew.spec.customization_propensity).clamp(0.0, 1.0);
    Some(PivotPlan { research_quality })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crew::{CrewRoster, CrewSpec};
    use crate::retention::Era;
    use mhw_netmodel::GeoDb;
    use mhw_simclock::SimRng;

    fn crew(customization: f64) -> Crew {
        let spec = CrewSpec {
            customization_propensity: customization,
            ..CrewSpec::paper_roster().remove(0)
        };
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(7);
        CrewRoster::build(vec![spec], Era::Y2012, &geo, &mut rng).crews.remove(0)
    }

    #[test]
    fn pivots_are_common_but_not_universal() {
        let c = crew(0.06);
        let mut rng = SimRng::from_seed(11);
        let n = (0..1000).filter(|_| plan_pivot(&c, &mut rng).is_some()).count();
        assert!(n > 400 && n < 750, "{n}");
    }

    #[test]
    fn research_quality_is_bounded_and_tracks_customization() {
        let casual = crew(0.0);
        let careful = crew(0.40);
        let mut r1 = SimRng::from_seed(3);
        let mut r2 = SimRng::from_seed(3);
        let mut sum = (0.0, 0.0);
        let mut n = 0;
        for _ in 0..2000 {
            let a = plan_pivot(&casual, &mut r1);
            let b = plan_pivot(&careful, &mut r2);
            if let (Some(a), Some(b)) = (a, b) {
                assert!((0.0..=1.0).contains(&a.research_quality));
                assert!((0.0..=1.0).contains(&b.research_quality));
                sum.0 += a.research_quality;
                sum.1 += b.research_quality;
                n += 1;
            }
        }
        assert!(n > 100);
        assert!(sum.1 / n as f64 > sum.0 / n as f64);
    }

    #[test]
    fn planning_is_deterministic_per_stream() {
        let c = crew(0.06);
        let mut r1 = SimRng::from_seed(42);
        let mut r2 = SimRng::from_seed(42);
        for _ in 0..200 {
            assert_eq!(plan_pivot(&c, &mut r1), plan_pivot(&c, &mut r2));
        }
    }
}
