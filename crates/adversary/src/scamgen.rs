//! Scam text generation.
//!
//! §5.3 distills hijacker scam mail to five principles; the generator
//! instantiates all five so the defender's classifier
//! (`mhw_defense::classifier`) is exercised against realistic adversary
//! output rather than strawmen:
//!
//! 1. a credible story with distressing detail,
//! 2. sympathy-evoking language,
//! 3. an appearance of limited financial risk (loan + speedy repayment),
//! 4. language discouraging out-of-band verification,
//! 5. an untraceable, safe-looking transfer mechanism (Western Union /
//!    MoneyGram by name).
//!
//! Texts are localized to the crew's working language (§7: the Ivory
//! Coast crews scam French speakers, the Nigerian crews English
//! speakers) and lightly personalized per victim, matching §5.3's
//! "semi-personalized" characterization.

use mhw_simclock::SimRng;
use mhw_types::Language;
use serde::{Deserialize, Serialize};

/// The story line of a scam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScamStyle {
    /// Robbed while travelling — the paper's flagship example.
    MuggedInCity,
    /// A relative with a sudden medical emergency.
    SickRelative,
}

impl ScamStyle {
    /// Draw a style with the observed story-frequency split.
    pub fn sample(rng: &mut SimRng) -> ScamStyle {
        if rng.chance(0.65) {
            ScamStyle::MuggedInCity
        } else {
            ScamStyle::SickRelative
        }
    }
}

/// Cities used in Mugged-In-"City" stories.
const CITIES: [&str; 6] = [
    "West Midlands, UK",
    "Manila, Philippines",
    "Madrid, Spain",
    "Limassol, Cyprus",
    "Kuala Lumpur, Malaysia",
    "Odessa, Ukraine",
];

/// Generate one scam message. `victim_first_name` personalizes the
/// greeting (semi-personalization); `customized` produces the longer,
/// higher-effort variant §5.3 observes in the ≤10-recipient cases.
pub fn generate_scam(
    style: ScamStyle,
    language: Language,
    victim_first_name: &str,
    customized: bool,
    rng: &mut SimRng,
) -> (String, String) {
    let city = CITIES[rng.below(CITIES.len() as u64) as usize];
    match language {
        Language::French => french_scam(style, victim_first_name, city, customized),
        Language::Spanish => spanish_scam(style, victim_first_name, city, customized),
        _ => english_scam(style, victim_first_name, city, customized),
    }
}

fn english_scam(
    style: ScamStyle,
    name: &str,
    city: &str,
    customized: bool,
) -> (String, String) {
    let greeting = if customized {
        format!("Dear {name}, I hate to ask you this of all people, but you are the only one I can trust right now.")
    } else {
        "Sorry to bother you with this.".to_string()
    };
    match style {
        ScamStyle::MuggedInCity => (
            "Terrible situation, please help".to_string(),
            format!(
                "{greeting} My family and I came down here to {city} for a \
                 short vacation and we were mugged last night in an alley by \
                 a gang of thugs on our way back from shopping; one of them \
                 had a knife poking my neck for almost two minutes and \
                 everything we had on us including my cell phone and credit \
                 cards were all stolen. I'm urgently in need of some money to \
                 pay for my hotel bills and my flight ticket home, and will \
                 payback as soon as I get back home. My phone was stolen so \
                 email is the only way to reach me. Please help by sending a \
                 money transfer via Western Union to my name."
            ),
        ),
        ScamStyle::SickRelative => (
            "Sorry to bother you with this".to_string(),
            format!(
                "{greeting} I am presently in {city} with my ill cousin. She \
                 is suffering from a kidney disease and must undergo a \
                 transplant to save her life. I urgently need a temporary \
                 emergency loan to cover the procedure and I promise to repay \
                 you the moment I am back. My phone was stolen at the \
                 hospital, so please don't try to call — just send the money \
                 via MoneyGram and I will confirm by email."
            ),
        ),
    }
}

fn french_scam(style: ScamStyle, name: &str, city: &str, customized: bool) -> (String, String) {
    let greeting = if customized {
        format!("Cher {name}, je suis désolé de te demander cela, mais tu es la seule personne en qui j'ai confiance.")
    } else {
        "Désolé de te déranger avec ceci.".to_string()
    };
    match style {
        ScamStyle::MuggedInCity => (
            "Situation urgente, s'il te plaît aide-moi".to_string(),
            format!(
                "{greeting} Nous sommes à {city} pour de courtes vacances et \
                 nous avons été agressés hier soir ; on nous a tout volé, y \
                 compris mon téléphone et mes cartes. J'ai urgent besoin \
                 d'argent pour payer l'hôtel et le billet de retour, je te \
                 rembourse dès mon retour (please help, urgent). Mon \
                 téléphone a été volé (phone was stolen), ne m'appelle pas — \
                 envoie un transfert Western Union à mon nom."
            ),
        ),
        ScamStyle::SickRelative => (
            "Désolé de te déranger".to_string(),
            format!(
                "{greeting} Je suis à {city} avec ma cousine malade qui doit \
                 subir une greffe de rein. J'ai urgent besoin d'un prêt \
                 d'urgence (emergency loan), je te rembourse très vite \
                 (repay). Mon téléphone a été volé (phone was stolen), \
                 envoie l'argent par MoneyGram s'il te plaît."
            ),
        ),
    }
}

fn spanish_scam(style: ScamStyle, name: &str, city: &str, customized: bool) -> (String, String) {
    let greeting = if customized {
        format!("Querido {name}, lamento pedirte esto, pero eres la única persona en quien confío.")
    } else {
        "Perdona que te moleste con esto.".to_string()
    };
    match style {
        ScamStyle::MuggedInCity => (
            "Situación urgente, por favor ayuda".to_string(),
            format!(
                "{greeting} Estamos en {city} de vacaciones y anoche nos \
                 asaltaron (we were robbed); se llevaron todo, incluido mi \
                 teléfono y las tarjetas. Necesito dinero urgente (urgent) \
                 para el hotel y el vuelo de vuelta; te lo devuelvo al llegar \
                 (repay). Mi teléfono fue robado (phone was stolen), no me \
                 llames — envía un giro por Western Union a mi nombre."
            ),
        ),
        ScamStyle::SickRelative => (
            "Perdona la molestia".to_string(),
            format!(
                "{greeting} Estoy en {city} con mi prima enferma que necesita \
                 un trasplante de riñón. Necesito un préstamo de emergencia \
                 (emergency loan) urgente y te lo devuelvo pronto (repay). Mi \
                 teléfono fue robado (phone was stolen); por favor envía el \
                 dinero por MoneyGram."
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_scam_instantiates_all_five_principles() {
        let mut rng = SimRng::from_seed(1);
        for style in [ScamStyle::MuggedInCity, ScamStyle::SickRelative] {
            let (_, body) = generate_scam(style, Language::English, "Alex", false, &mut rng);
            let b = body.to_ascii_lowercase();
            // 1: story detail; 2: plea; 3: repayment; 4: anti-verification;
            // 5: transfer mechanism.
            assert!(
                b.contains("mugged") || b.contains("kidney"),
                "story: {b}"
            );
            assert!(b.contains("urgent"), "plea: {b}");
            assert!(b.contains("payback") || b.contains("repay"), "repayment: {b}");
            assert!(b.contains("phone was stolen") || b.contains("don't try to call"), "anti-verification: {b}");
            assert!(
                b.contains("western union") || b.contains("moneygram"),
                "mechanism: {b}"
            );
        }
    }

    #[test]
    fn customization_personalizes() {
        let mut rng = SimRng::from_seed(2);
        let (_, plain) = generate_scam(ScamStyle::MuggedInCity, Language::English, "Sam", false, &mut rng);
        let (_, custom) = generate_scam(ScamStyle::MuggedInCity, Language::English, "Sam", true, &mut rng);
        assert!(!plain.contains("Sam"));
        assert!(custom.contains("Sam"));
        assert!(custom.len() > plain.len() - 50); // customized is not shorter
    }

    #[test]
    fn localization_matches_language() {
        let mut rng = SimRng::from_seed(3);
        let (_, fr) = generate_scam(ScamStyle::MuggedInCity, Language::French, "Luc", false, &mut rng);
        assert!(fr.contains("Western Union"));
        assert!(fr.contains("agressés") || fr.contains("volé"));
        let (_, es) = generate_scam(ScamStyle::SickRelative, Language::Spanish, "Ana", false, &mut rng);
        assert!(es.contains("MoneyGram"));
        assert!(es.contains("préstamo") || es.contains("emergencia"));
    }

    #[test]
    fn defenders_classifier_catches_generated_scams() {
        // The generator and the classifier are developed against the
        // same five principles; generated scams must trip it.
        use mhw_defense::classifier::{classify_mail, MailClass};
        use mhw_mailsys::{Message, MessageKind};
        use mhw_types::{AccountId, EmailAddress, MessageId, SimTime};
        let mut rng = SimRng::from_seed(4);
        for style in [ScamStyle::MuggedInCity, ScamStyle::SickRelative] {
            for lang in [Language::English, Language::French, Language::Spanish] {
                let (subject, body) = generate_scam(style, lang, "Casey", false, &mut rng);
                let m = Message {
                    id: MessageId(0),
                    owner: AccountId(0),
                    from: EmailAddress::new("victim", "homemail.com"),
                    to: vec![],
                    subject,
                    body,
                    attachments: vec![],
                    kind: MessageKind::Scam,
                    reply_to: None,
                    at: SimTime::EPOCH,
                    read: false,
                    starred: false,
                };
                assert_eq!(
                    classify_mail(&m),
                    MailClass::Scam,
                    "{style:?}/{lang:?} must classify as scam"
                );
            }
        }
    }

    #[test]
    fn style_mix_favours_mugged() {
        let mut rng = SimRng::from_seed(5);
        let n = 10_000;
        let mugged = (0..n)
            .filter(|_| ScamStyle::sample(&mut rng) == ScamStyle::MuggedInCity)
            .count() as f64
            / n as f64;
        assert!((mugged - 0.65).abs() < 0.02, "{mugged}");
    }
}
