//! Proxy / IP-cloaking pools.
//!
//! §8.1 notes that manual hijackers have "some additional knowledge of
//! using IP cloaking services and browser plugins", and §7 cautions that
//! the geolocated login traffic (Figure 11) may come "from proxies or
//! represent the true origin of the hijackers". The simulator models
//! that honestly: each crew owns a pool of exit IPs, a fraction of which
//! are proxies in *other* countries. Figure 11 then measures exactly
//! what Google could measure — the apparent countries — while the ground
//! truth (crew homes) remains available to validation tests only.

use crate::geo::GeoDb;
use mhw_simclock::SimRng;
use mhw_types::{CountryCode, IpAddr};

/// A pool of exit addresses available to one actor (crew or botnet).
#[derive(Debug, Clone)]
pub struct ProxyPool {
    exits: Vec<(IpAddr, CountryCode)>,
}

impl ProxyPool {
    /// Build a pool of `size` exits for an actor based in `home`.
    ///
    /// `proxy_fraction` of the exits are cloaking proxies drawn from
    /// `proxy_countries` (weighted uniformly); the rest are home-country
    /// addresses. The paper's data suggests heavy proxying through China
    /// and Malaysia for some crews.
    pub fn build(
        geo: &GeoDb,
        home: CountryCode,
        proxy_countries: &[CountryCode],
        proxy_fraction: f64,
        size: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(size > 0, "pool must have at least one exit");
        let mut exits = Vec::with_capacity(size);
        for _ in 0..size {
            let country = if !proxy_countries.is_empty() && rng.chance(proxy_fraction) {
                *rng.choose(proxy_countries).expect("non-empty")
            } else {
                home
            };
            exits.push((geo.random_ip(country, rng), country));
        }
        ProxyPool { exits }
    }

    /// Number of exits.
    pub fn len(&self) -> usize {
        self.exits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exits.is_empty()
    }

    /// Pick an exit uniformly at random.
    pub fn pick(&self, rng: &mut SimRng) -> (IpAddr, CountryCode) {
        *rng.choose(&self.exits).expect("pool is non-empty")
    }

    /// Deterministic exit for a rotation index — crews rotate through
    /// exits day by day to keep per-IP account counts low (§5.1).
    pub fn rotate(&self, index: u64) -> (IpAddr, CountryCode) {
        self.exits[(index % self.exits.len() as u64) as usize]
    }

    /// All exits (for tests / attribution ground truth).
    pub fn exits(&self) -> &[(IpAddr, CountryCode)] {
        &self.exits
    }

    /// Fraction of exits whose apparent country differs from `home`.
    pub fn cloaked_fraction(&self, home: CountryCode) -> f64 {
        if self.exits.is_empty() {
            return 0.0;
        }
        self.exits.iter().filter(|(_, c)| *c != home).count() as f64 / self.exits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_home_when_no_proxies() {
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(2);
        let pool = ProxyPool::build(&geo, CountryCode::NG, &[], 0.9, 50, &mut rng);
        assert_eq!(pool.len(), 50);
        assert_eq!(pool.cloaked_fraction(CountryCode::NG), 0.0);
        for (ip, c) in pool.exits() {
            assert_eq!(*c, CountryCode::NG);
            assert_eq!(geo.locate(*ip), Some(CountryCode::NG));
        }
    }

    #[test]
    fn proxy_fraction_is_respected() {
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(3);
        let pool = ProxyPool::build(
            &geo,
            CountryCode::CI,
            &[CountryCode::CN, CountryCode::MY],
            0.6,
            500,
            &mut rng,
        );
        let f = pool.cloaked_fraction(CountryCode::CI);
        assert!((f - 0.6).abs() < 0.07, "cloaked fraction {f}");
        // Cloaked exits really geolocate to the proxy countries.
        for (ip, c) in pool.exits().iter().filter(|(_, c)| *c != CountryCode::CI) {
            assert!(matches!(c, CountryCode::CN | CountryCode::MY));
            assert_eq!(geo.locate(*ip), Some(*c));
        }
    }

    #[test]
    fn rotation_cycles_through_pool() {
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(4);
        let pool = ProxyPool::build(&geo, CountryCode::ZA, &[], 0.0, 7, &mut rng);
        assert_eq!(pool.rotate(0), pool.rotate(7));
        assert_eq!(pool.rotate(3), pool.rotate(10));
        let distinct: std::collections::HashSet<_> =
            (0..7).map(|i| pool.rotate(i).0).collect();
        assert_eq!(distinct.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one exit")]
    fn empty_pool_rejected() {
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(5);
        ProxyPool::build(&geo, CountryCode::US, &[], 0.0, 0, &mut rng);
    }
}
