//! Country IPv4 allocations and geolocation.
//!
//! Each modelled country owns a disjoint set of address blocks inside a
//! country-unique /8 (a deliberately clean version of real RIR
//! allocations — the measurement code only ever needs block→country
//! lookups, never routing). Geolocating an address walks the block table,
//! exactly how a GeoIP database behaves from the consumer's perspective.

use mhw_simclock::SimRng;
use mhw_types::{CountryCode, IpAddr, IpBlock};

/// Number of /16 blocks each country receives inside its /8.
const BLOCKS_PER_COUNTRY: u32 = 8;

/// A geolocation database over the synthetic address plan.
#[derive(Debug, Clone)]
pub struct GeoDb {
    entries: Vec<(IpBlock, CountryCode)>,
}

impl Default for GeoDb {
    fn default() -> Self {
        Self::new()
    }
}

impl GeoDb {
    /// Build the standard address plan: country `i` owns
    /// `BLOCKS_PER_COUNTRY` /16s inside the `(40 + i).0.0.0/8` space.
    /// Octet 40 keeps the plan clear of common private/reserved ranges,
    /// which avoids confusing anyone eyeballing logs.
    pub fn new() -> Self {
        let mut entries = Vec::new();
        for (i, country) in CountryCode::ALL.iter().enumerate() {
            let first_octet = 40 + i as u8;
            for b in 0..BLOCKS_PER_COUNTRY {
                // Spread the /16s across the /8 (second octet stride 29
                // so blocks are non-adjacent, like real allocations).
                let second = (b * 29 % 256) as u8;
                let block = IpBlock::new(IpAddr::new(first_octet, second, 0, 0), 16);
                entries.push((block, *country));
            }
        }
        GeoDb { entries }
    }

    /// All blocks allocated to `country`.
    pub fn blocks_for(&self, country: CountryCode) -> Vec<IpBlock> {
        self.entries
            .iter()
            .filter(|(_, c)| *c == country)
            .map(|(b, _)| *b)
            .collect()
    }

    /// Geolocate an address. `None` for addresses outside the plan
    /// (which the simulator never emits, but logs are data: be total).
    pub fn locate(&self, ip: IpAddr) -> Option<CountryCode> {
        self.entries
            .iter()
            .find(|(b, _)| b.contains(ip))
            .map(|(_, c)| *c)
    }

    /// Draw a random address located in `country`.
    pub fn random_ip(&self, country: CountryCode, rng: &mut SimRng) -> IpAddr {
        let blocks = self.blocks_for(country);
        let block = blocks[rng.below(blocks.len() as u64) as usize];
        // Avoid .0 and .255 hosts for cosmetic realism.
        let host = rng.range_inclusive(1, block.size() - 2);
        block.addr(host)
    }

    /// Deterministically assign the `i`-th host address in `country`
    /// (used to give long-lived agents stable addresses).
    pub fn stable_ip(&self, country: CountryCode, i: u64) -> IpAddr {
        let blocks = self.blocks_for(country);
        let block = blocks[(i % blocks.len() as u64) as usize];
        block.addr(1 + i / blocks.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_country_has_blocks() {
        let db = GeoDb::new();
        for c in CountryCode::ALL {
            assert_eq!(db.blocks_for(c).len(), BLOCKS_PER_COUNTRY as usize, "{c}");
        }
    }

    #[test]
    fn blocks_are_disjoint() {
        let db = GeoDb::new();
        for (i, (a, _)) in db.entries.iter().enumerate() {
            for (b, _) in db.entries.iter().skip(i + 1) {
                assert!(
                    !a.contains(b.base()) && !b.contains(a.base()),
                    "{a} overlaps {b}"
                );
            }
        }
    }

    #[test]
    fn locate_round_trips_random_ips() {
        let db = GeoDb::new();
        let mut rng = SimRng::from_seed(1);
        for c in CountryCode::ALL {
            for _ in 0..20 {
                let ip = db.random_ip(c, &mut rng);
                assert_eq!(db.locate(ip), Some(c), "{ip} should be in {c}");
            }
        }
    }

    #[test]
    fn locate_unknown_is_none() {
        let db = GeoDb::new();
        assert_eq!(db.locate(IpAddr::new(8, 8, 8, 8)), None);
        assert_eq!(db.locate(IpAddr::new(192, 168, 0, 1)), None);
    }

    #[test]
    fn stable_ips_are_stable_and_located() {
        let db = GeoDb::new();
        let a = db.stable_ip(CountryCode::NG, 17);
        let b = db.stable_ip(CountryCode::NG, 17);
        assert_eq!(a, b);
        assert_eq!(db.locate(a), Some(CountryCode::NG));
        // Distinct indices give distinct addresses (within plan capacity).
        assert_ne!(db.stable_ip(CountryCode::NG, 1), db.stable_ip(CountryCode::NG, 2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every address handed out by the plan geolocates back to the
        /// country it was allocated for.
        #[test]
        fn allocation_geolocates_home(country_idx in 0usize..CountryCode::ALL.len(), host in 0u64..1_000_000) {
            let db = GeoDb::new();
            let country = CountryCode::ALL[country_idx];
            let ip = db.stable_ip(country, host);
            prop_assert_eq!(db.locate(ip), Some(country));
        }

        /// Geolocation is a partial function: any IP maps to at most one
        /// country (blocks are disjoint).
        #[test]
        fn locate_is_unambiguous(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 0u8..=255) {
            let db = GeoDb::new();
            let ip = IpAddr::new(a, b, c, d);
            let hits = CountryCode::ALL
                .iter()
                .filter(|country| db.blocks_for(**country).iter().any(|blk| blk.contains(ip)))
                .count();
            prop_assert!(hits <= 1);
            prop_assert_eq!(db.locate(ip).is_some(), hits == 1);
        }
    }
}
