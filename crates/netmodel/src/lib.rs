//! # mhw-netmodel
//!
//! A synthetic model of the parts of the Internet the paper's
//! measurements touch:
//!
//! * [`GeoDb`] — per-country IPv4 allocations and geolocation, the basis
//!   of the Figure 11 attribution analysis;
//! * [`ProxyPool`] — IP cloaking services used by hijacker crews (§8.1
//!   notes crews have "some additional knowledge of using IP cloaking
//!   services"), which decouple a login's apparent country from the
//!   crew's home;
//! * [`PhonePlan`] — phone-number issuance per country, the basis of
//!   Figure 12;
//! * [`referrer`] — the HTTP-referrer model behind Figure 3 (why >99% of
//!   phishing-page referrers are blank, and which webmail providers leak
//!   referrers);
//! * [`domains`] — the email-domain/TLD model behind Figure 4 (why
//!   phished addresses skew so heavily to `.edu`).

pub mod domains;
pub mod geo;
pub mod phones;
pub mod proxy;
pub mod referrer;

pub use domains::{DomainModel, MailDomain};
pub use geo::GeoDb;
pub use phones::PhonePlan;
pub use proxy::ProxyPool;
pub use referrer::{ReferrerModel, ReferrerSource};
