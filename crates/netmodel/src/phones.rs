//! Phone number issuance.
//!
//! Users register recovery phone numbers; crews buy burner numbers in
//! their home countries (which is what makes Figure 12's country-code
//! attribution work — "the volume of phone numbers involved … is small
//! enough to corroborate our hypothesis that it is manual work and large
//! enough to point to organized groups").

use mhw_simclock::SimRng;
use mhw_types::{CountryCode, PhoneNumber};
use std::collections::HashSet;

/// A numbering plan that issues unique numbers per country.
#[derive(Debug, Clone, Default)]
pub struct PhonePlan {
    issued: HashSet<PhoneNumber>,
    counter: u64,
}

impl PhonePlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue a fresh number in `country`. National numbers are 8-digit
    /// and unique across the plan's lifetime.
    pub fn issue(&mut self, country: CountryCode, rng: &mut SimRng) -> PhoneNumber {
        loop {
            // Random 8-digit subscriber number, salted with a counter to
            // guarantee termination even under pathological RNG streaks.
            let national = 10_000_000 + (rng.below(89_999_999) + self.counter) % 90_000_000;
            self.counter += 1;
            let n = PhoneNumber::new(country, national);
            if self.issued.insert(n) {
                return n;
            }
        }
    }

    /// Number of numbers issued so far.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }

    /// Whether a number was issued by this plan (vs. fabricated).
    pub fn is_issued(&self, n: &PhoneNumber) -> bool {
        self.issued.contains(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issued_numbers_are_unique() {
        let mut plan = PhonePlan::new();
        let mut rng = SimRng::from_seed(6);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let n = plan.issue(CountryCode::NG, &mut rng);
            assert!(seen.insert(n), "duplicate number {n}");
        }
        assert_eq!(plan.issued_count(), 2000);
    }

    #[test]
    fn numbers_carry_country() {
        let mut plan = PhonePlan::new();
        let mut rng = SimRng::from_seed(7);
        let n = plan.issue(CountryCode::CI, &mut rng);
        assert_eq!(n.country(), Some(CountryCode::CI));
        assert!(plan.is_issued(&n));
        assert!(!plan.is_issued(&PhoneNumber::new(CountryCode::CI, 1)));
    }

    #[test]
    fn national_numbers_are_eight_digits() {
        let mut plan = PhonePlan::new();
        let mut rng = SimRng::from_seed(8);
        for _ in 0..100 {
            let n = plan.issue(CountryCode::ZA, &mut rng);
            assert!((10_000_000..100_000_000).contains(&n.national()));
        }
    }
}
