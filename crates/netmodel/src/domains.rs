//! Email-domain and TLD model.
//!
//! Figure 4 breaks the addresses submitted to phishing pages down by TLD
//! and finds `.edu` overwhelmingly dominant. §4.2 explains why: lure
//! email reaches self-hosted (university) inboxes at ~10× the rate it
//! reaches industrially filtered webmail. The domain model therefore
//! assigns every simulated address a [`MailDomain`] with a domain class,
//! and the phishing substrate modulates lure delivery by that class —
//! the `.edu` skew then *emerges* from delivery rates rather than being
//! painted on.

use mhw_simclock::SimRng;
use mhw_types::{EmailAddress, EmailDomainClass};
use serde::{Deserialize, Serialize};

/// A mail domain with its operational class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MailDomain {
    pub name: String,
    pub class: EmailDomainClass,
}

impl MailDomain {
    pub fn tld(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// The ecosystem's domain inventory.
#[derive(Debug, Clone)]
pub struct DomainModel {
    /// The simulated provider's own domain (Gmail's role).
    pub home: MailDomain,
    /// Other major webmail domains.
    pub webmail: Vec<MailDomain>,
    /// Self-hosted university domains (`.edu` and international
    /// equivalents).
    pub edu: Vec<MailDomain>,
    /// Other self-hosted domains (companies, vanity).
    pub self_hosted: Vec<MailDomain>,
}

impl Default for DomainModel {
    fn default() -> Self {
        Self::standard()
    }
}

impl DomainModel {
    /// The standard inventory. TLD variety matches Figure 4's x-axis
    /// (com, edu, ca, net, org, country codes, …).
    pub fn standard() -> Self {
        let wm = |name: &str| MailDomain {
            name: name.to_string(),
            class: EmailDomainClass::MajorWebmail,
        };
        let edu = |name: &str| MailDomain {
            name: name.to_string(),
            class: EmailDomainClass::SelfHostedEdu,
        };
        let sh = |name: &str| MailDomain {
            name: name.to_string(),
            class: EmailDomainClass::SelfHostedOther,
        };
        DomainModel {
            home: wm("homemail.com"),
            webmail: vec![
                wm("yahoomail.com"),
                wm("hotmail-like.com"),
                wm("aolmail.com"),
                wm("regionmail.net"),
            ],
            edu: vec![
                edu("stateuniv.edu"),
                edu("techinstitute.edu"),
                edu("cs.bigstate.edu"),
                edu("liberalarts.edu"),
                edu("medschool.edu"),
                edu("northcampus.edu"),
                edu("univ-centrale.fr"),
                edu("uni-sud.fr"),
            ],
            self_hosted: vec![
                sh("smallbiz.com"),
                sh("familyname.net"),
                sh("consulting.org"),
                sh("artisans.com.br"),
                sh("importexport.co.uk"),
                sh("despacho.es"),
                sh("atelier.fr"),
                sh("trading.com.my"),
                sh("estudio.com.ar"),
                sh("negocio.cl"),
                sh("software.in"),
                sh("design.se"),
                sh("agency.us"),
                sh("clinic.ca"),
                sh("lab.fi"),
                sh("shop.pl"),
                sh("studio.it"),
                sh("farm.au"),
                sh("media.sg"),
                sh("haus.de"),
                sh("kantoor.nl"),
                sh("office.mx"),
            ],
        }
    }

    /// Every domain in the inventory.
    pub fn all(&self) -> Vec<&MailDomain> {
        std::iter::once(&self.home)
            .chain(self.webmail.iter())
            .chain(self.edu.iter())
            .chain(self.self_hosted.iter())
            .collect()
    }

    /// Find a domain record by name.
    pub fn lookup(&self, name: &str) -> Option<&MailDomain> {
        self.all().into_iter().find(|d| d.name == name)
    }

    /// Class of an address, defaulting to `SelfHostedOther` for unknown
    /// domains (conservative: commodity filtering).
    pub fn class_of(&self, addr: &EmailAddress) -> EmailDomainClass {
        self.lookup(addr.domain())
            .map(|d| d.class)
            .unwrap_or(EmailDomainClass::SelfHostedOther)
    }

    /// Draw an *external* (non-home-provider) address for a victim
    /// contact or a phishing target, mixing webmail, edu and self-hosted
    /// by the given weights.
    pub fn random_external_address(
        &self,
        rng: &mut SimRng,
        user_tag: u64,
        w_webmail: f64,
        w_edu: f64,
        w_self_hosted: f64,
    ) -> EmailAddress {
        let group = rng
            .weighted_index(&[w_webmail, w_edu, w_self_hosted])
            .expect("weights must not all be zero");
        let pool = match group {
            0 => &self.webmail,
            1 => &self.edu,
            _ => &self.self_hosted,
        };
        let domain = rng.choose(pool).expect("non-empty pool");
        EmailAddress::new(format!("user{user_tag}"), domain.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_is_major_webmail() {
        let m = DomainModel::standard();
        assert_eq!(m.home.class, EmailDomainClass::MajorWebmail);
        assert_eq!(m.home.tld(), "com");
    }

    #[test]
    fn edu_domains_have_edu_class() {
        let m = DomainModel::standard();
        assert!(!m.edu.is_empty());
        for d in &m.edu {
            assert_eq!(d.class, EmailDomainClass::SelfHostedEdu);
        }
    }

    #[test]
    fn lookup_and_class_of() {
        let m = DomainModel::standard();
        assert!(m.lookup("stateuniv.edu").is_some());
        assert!(m.lookup("nonexistent.xyz").is_none());
        let a = EmailAddress::new("x", "stateuniv.edu");
        assert_eq!(m.class_of(&a), EmailDomainClass::SelfHostedEdu);
        let b = EmailAddress::new("x", "unknown.tld");
        assert_eq!(m.class_of(&b), EmailDomainClass::SelfHostedOther);
    }

    #[test]
    fn tld_variety_covers_figure4_axis() {
        let m = DomainModel::standard();
        let tlds: std::collections::HashSet<_> =
            m.all().iter().map(|d| d.tld().to_string()).collect();
        for needed in ["com", "edu", "net", "org", "fr", "de", "ca", "us"] {
            assert!(tlds.contains(needed), "missing TLD {needed}");
        }
        assert!(tlds.len() >= 15, "need TLD variety, got {}", tlds.len());
    }

    #[test]
    fn random_external_address_honours_weights() {
        let m = DomainModel::standard();
        let mut rng = SimRng::from_seed(12);
        // Only edu weight → always edu.
        for i in 0..50 {
            let a = m.random_external_address(&mut rng, i, 0.0, 1.0, 0.0);
            assert_eq!(m.class_of(&a), EmailDomainClass::SelfHostedEdu);
        }
        // Only webmail weight → always webmail, never the home domain.
        for i in 0..50 {
            let a = m.random_external_address(&mut rng, i, 1.0, 0.0, 0.0);
            assert_eq!(m.class_of(&a), EmailDomainClass::MajorWebmail);
            assert_ne!(a.domain(), m.home.name);
        }
    }
}
