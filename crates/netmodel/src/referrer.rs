//! HTTP-referrer model for phishing-page traffic.
//!
//! §4.2 observed that **over 99% of requests to phishing pages carry a
//! blank referrer**, because victims are lured by email: desktop mail
//! clients send no referrer at all, and major webmail (including the
//! provider itself) strips it by opening links in a new tab. The
//! remaining <1% leak referrers from an assortment of webmail frontends
//! (Figure 3), with the home provider appearing only via a legacy HTML
//! frontend used by old phones.
//!
//! The model assigns a referrer to each phishing-page visit as a function
//! of *how the victim reached the page* — the causal structure the paper
//! infers — rather than sampling Figure 3 directly.

use mhw_simclock::SimRng;
use mhw_types::WebmailProvider;
use serde::{Deserialize, Serialize};

/// How a victim arrived at a phishing page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReferrerSource {
    /// Clicked a lure in a desktop mail client (no referrer, ever).
    DesktopMailClient,
    /// Clicked a lure in a modern webmail UI (referrer stripped).
    ModernWebmail,
    /// Clicked a lure in a webmail frontend that leaks referrers.
    LeakyWebmail(WebmailProvider),
    /// Crawler / clearinghouse traffic (leaks its own referrer).
    Clearinghouse,
    /// Direct navigation (pasted URL; no referrer).
    Direct,
}

/// The observed referrer on a single HTTP request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Referrer {
    Blank,
    From(WebmailProvider),
}

/// Distribution of arrival paths for email-lured phishing traffic.
#[derive(Debug, Clone)]
pub struct ReferrerModel {
    /// Probability that a lure click comes from a desktop client.
    pub p_desktop: f64,
    /// Probability that a webmail click goes through a leaky frontend
    /// (conditioned on being webmail).
    pub p_leaky_given_webmail: f64,
    /// Mix of leaky frontends, ordered as [`WebmailProvider::ALL`].
    pub leaky_mix: [f64; 10],
}

impl Default for ReferrerModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl ReferrerModel {
    /// Calibration reproducing Figure 3's ordering: generic webmail and
    /// the Yahoo-like provider dominate the leaked referrers; the home
    /// provider leaks only through its legacy frontend; clearinghouse,
    /// social-network and regional-search referrers trail.
    pub fn paper_calibrated() -> Self {
        ReferrerModel {
            p_desktop: 0.35,
            // Referrer leakage is rare: calibrated so total non-blank
            // stays under 1% of page views.
            p_leaky_given_webmail: 0.012,
            leaky_mix: [
                1150.0, // Webmail Generic
                760.0,  // Yahoo-like
                620.0,  // Other
                550.0,  // Home provider (legacy phones)
                330.0,  // Portal properties
                260.0,  // Microsoft-like
                210.0,  // AOL-like
                150.0,  // Phish clearinghouse
                120.0,  // Social network
                90.0,   // Regional search mail
            ],
        }
    }

    /// Draw the arrival path of one lure click.
    pub fn sample_source(&self, rng: &mut SimRng) -> ReferrerSource {
        if rng.chance(self.p_desktop) {
            return ReferrerSource::DesktopMailClient;
        }
        if rng.chance(self.p_leaky_given_webmail) {
            let idx = rng
                .weighted_index(&self.leaky_mix)
                .expect("leaky mix has positive weights");
            ReferrerSource::LeakyWebmail(WebmailProvider::ALL[idx])
        } else {
            ReferrerSource::ModernWebmail
        }
    }

    /// The referrer a given arrival path produces on the HTTP request.
    pub fn referrer_of(source: ReferrerSource) -> Referrer {
        match source {
            ReferrerSource::DesktopMailClient
            | ReferrerSource::ModernWebmail
            | ReferrerSource::Direct => Referrer::Blank,
            ReferrerSource::LeakyWebmail(p) => Referrer::From(p),
            ReferrerSource::Clearinghouse => {
                Referrer::From(WebmailProvider::PhishClearinghouse)
            }
        }
    }

    /// Convenience: sample the observable referrer of one lure click.
    pub fn sample_referrer(&self, rng: &mut SimRng) -> Referrer {
        Self::referrer_of(self.sample_source(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_lured_traffic_is_mostly_blank() {
        let model = ReferrerModel::paper_calibrated();
        let mut rng = SimRng::from_seed(9);
        let n = 100_000;
        let blank = (0..n)
            .filter(|_| model.sample_referrer(&mut rng) == Referrer::Blank)
            .count();
        let frac = blank as f64 / n as f64;
        assert!(frac > 0.99, "blank fraction {frac} must exceed 99% (§4.2)");
        assert!(frac < 0.9999, "some referrers must leak for Figure 3");
    }

    #[test]
    fn leaked_referrers_ordered_like_figure3() {
        let model = ReferrerModel::paper_calibrated();
        let mut rng = SimRng::from_seed(10);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2_000_000 {
            if let Referrer::From(p) = model.sample_referrer(&mut rng) {
                *counts.entry(p).or_insert(0usize) += 1;
            }
        }
        let generic = counts[&WebmailProvider::GenericWebmail];
        let yahoo = counts[&WebmailProvider::YahooLike];
        let regional = *counts.get(&WebmailProvider::RegionalSearchMail).unwrap_or(&0);
        assert!(generic > yahoo, "generic {generic} vs yahoo {yahoo}");
        assert!(yahoo > regional, "yahoo {yahoo} vs regional {regional}");
    }

    #[test]
    fn referrer_of_is_deterministic() {
        assert_eq!(
            ReferrerModel::referrer_of(ReferrerSource::DesktopMailClient),
            Referrer::Blank
        );
        assert_eq!(
            ReferrerModel::referrer_of(ReferrerSource::Direct),
            Referrer::Blank
        );
        assert_eq!(
            ReferrerModel::referrer_of(ReferrerSource::LeakyWebmail(
                WebmailProvider::YahooLike
            )),
            Referrer::From(WebmailProvider::YahooLike)
        );
        assert_eq!(
            ReferrerModel::referrer_of(ReferrerSource::Clearinghouse),
            Referrer::From(WebmailProvider::PhishClearinghouse)
        );
    }
}
