//! Plain-text rendering and paper-vs-measured comparisons.

use crate::breakdown::Breakdown;
use serde::{Deserialize, Serialize};

/// One paper-vs-measured row for EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// E.g. "Fig 7: decoys accessed within 30 min".
    pub metric: String,
    /// The paper's value, as printed there.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the shape/band matches (judged by the experiment's own
    /// tolerance, recorded explicitly for honesty).
    pub matches: bool,
    /// Free-form note (tolerance used, caveats).
    pub note: String,
}

impl Comparison {
    /// Assemble a row; `matches` is the experiment's own judgement.
    pub fn new(
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        matches: bool,
        note: impl Into<String>,
    ) -> Self {
        Comparison {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
            matches,
            note: note.into(),
        }
    }
}

/// A titled group of comparisons (one per experiment).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// Section heading (the experiment's name).
    pub title: String,
    /// Paper-vs-measured rows in presentation order.
    pub rows: Vec<Comparison>,
}

impl ComparisonTable {
    /// An empty table with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        ComparisonTable { title: title.into(), rows: Vec::new() }
    }

    /// Append a comparison row.
    pub fn push(&mut self, row: Comparison) {
        self.rows.push(row);
    }

    /// Whether every row matched.
    pub fn all_match(&self) -> bool {
        self.rows.iter().all(|r| r.matches)
    }

    /// Render as a GitHub-flavoured markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| Metric | Paper | Measured | Match | Note |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                escape(&r.metric),
                escape(&r.paper),
                escape(&r.measured),
                if r.matches { "✓" } else { "✗" },
                escape(&r.note),
            ));
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('|', "\\|")
}

/// Render a breakdown as a right-aligned text bar chart (the Figure 3 /
/// 10 / 12 style).
pub fn bar_chart(b: &Breakdown, width: usize) -> String {
    let rows = b.rows();
    let max = rows.first().map(|r| r.1).unwrap_or(0).max(1);
    let label_w = rows.iter().map(|r| r.0.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, count, frac) in rows {
        let bar_len = ((count as f64 / max as f64) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$}  {bar:<width$}  {count:>7} ({pct:5.1}%)\n",
            bar = "#".repeat(bar_len),
            pct = frac * 100.0,
        ));
    }
    out
}

/// Render `(label, value)` rows as a simple aligned two-column table.
pub fn markdown_table(headers: (&str, &str), rows: &[(String, String)]) -> String {
    let mut out = format!("| {} | {} |\n|---|---|\n", headers.0, headers.1);
    for (a, b) in rows {
        out.push_str(&format!("| {} | {} |\n", escape(a), escape(b)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_markdown() {
        let mut t = ComparisonTable::new("Figure 7");
        t.push(Comparison::new("≤30 min", "20%", "21.3%", true, "±5pp"));
        t.push(Comparison::new("≤7 h", "50%", "48.9%", true, "±5pp"));
        let md = t.to_markdown();
        assert!(md.contains("### Figure 7"));
        assert!(md.contains("| ≤30 min | 20% | 21.3% | ✓ | ±5pp |"));
        assert!(t.all_match());
        t.push(Comparison::new("x", "1", "9", false, ""));
        assert!(!t.all_match());
    }

    #[test]
    fn pipes_are_escaped() {
        let mut t = ComparisonTable::new("T");
        t.push(Comparison::new("a|b", "1", "2", true, "n|m"));
        let md = t.to_markdown();
        assert!(md.contains("a\\|b"));
        assert!(md.contains("n\\|m"));
    }

    #[test]
    fn bar_chart_scales() {
        let mut b = Breakdown::new();
        b.add_n("big", 100);
        b.add_n("small", 10);
        let chart = bar_chart(&b, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("big"));
        let big_bars = lines[0].matches('#').count();
        let small_bars = lines[1].matches('#').count();
        assert_eq!(big_bars, 20);
        assert_eq!(small_bars, 2);
        assert!(lines[0].contains("100"));
        assert!(lines[1].contains("10.0%") || lines[1].contains("9.1%"));
    }

    #[test]
    fn empty_bar_chart() {
        let b = Breakdown::new();
        assert_eq!(bar_chart(&b, 10), "");
    }

    #[test]
    fn simple_markdown_table() {
        let rows = vec![("SMS".to_string(), "80.9%".to_string())];
        let md = markdown_table(("Method", "Success"), &rows);
        assert!(md.contains("| Method | Success |"));
        assert!(md.contains("| SMS | 80.9% |"));
    }
}
