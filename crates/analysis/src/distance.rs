//! Distance metrics between measured shapes and the paper's published
//! numbers.
//!
//! The fidelity checker (`mhw_experiments::fidelity`) reduces every
//! calibration target to a single non-negative *distance* that a
//! tolerance band then classifies as PASS/WARN/FAIL:
//!
//! * [`ks_at_reference`] / [`max_abs_delta`] — Kolmogorov–Smirnov-style
//!   statistics for CDF-shaped targets (Figures 7 and 9);
//! * [`total_variation`] / [`chi_square`] — categorical-mix distances
//!   (Figures 3, 4, 10–12 and Tables 2–3);
//! * [`relative_error`] / [`mean_abs_error`] — scalar bands (Figure 5's
//!   13.7% mean, Figure 8's 9.6 attempts/IP/day).
//!
//! All functions are pure and total on finite inputs: no NaNs escape
//! (degenerate references yield `0.0` or `f64::INFINITY`, never NaN),
//! so distances compare and serialize deterministically.

use crate::stats::Ecdf;

/// Kolmogorov–Smirnov-style statistic between a measured ECDF and the
/// paper's published CDF points: `max |F_measured(x) − F_paper(x)|`
/// over the `(x, F_paper)` reference points.
///
/// The paper never publishes full curves — only landmark points ("50%
/// within 13 hours") — so the statistic is evaluated exactly at those
/// landmarks rather than over the whole support.
///
/// ```
/// use mhw_analysis::{distance::ks_at_reference, Ecdf};
/// let e = Ecdf::new(vec![0.5, 2.0, 6.0, 20.0]); // hours
/// // Paper: 25% within 1 h, 50% within 7 h. Measured: 25% and 75%.
/// let d = ks_at_reference(&e, &[(1.0, 0.25), (7.0, 0.50)]);
/// assert!((d - 0.25).abs() < 1e-12);
/// ```
pub fn ks_at_reference(ecdf: &Ecdf, reference: &[(f64, f64)]) -> f64 {
    reference
        .iter()
        .map(|(x, paper)| (ecdf.fraction_at_or_below(*x) - paper).abs())
        .fold(0.0, f64::max)
}

/// Max absolute difference over pre-paired `(measured, paper)` values —
/// the KS statistic for CDFs whose measured fractions need rescaling
/// before comparison (Figure 7 expresses its CDF as a fraction of *all*
/// decoys, including the never-accessed ones).
pub fn max_abs_delta(pairs: &[(f64, f64)]) -> f64 {
    pairs.iter().map(|(m, p)| (m - p).abs()).fold(0.0, f64::max)
}

/// Mean absolute difference over `(measured, paper)` pairs — the L1
/// band for vectors of *rates* that are not a distribution (Figure 10's
/// per-method success rates).
pub fn mean_abs_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(m, p)| (m - p).abs()).sum::<f64>() / pairs.len() as f64
}

/// Total-variation (normalized L1) distance between two categorical
/// distributions given as `(label, fraction)` rows:
/// `0.5 × Σ |p(label) − q(label)|` over the union of labels.
///
/// Labels missing from one side count as fraction 0 there, so the
/// measured mix may carry a long tail the paper never tabulates.
///
/// ```
/// use mhw_analysis::distance::total_variation;
/// let paper = [("mail".to_string(), 0.6), ("bank".to_string(), 0.4)];
/// let measured = [("mail".to_string(), 0.5), ("bank".to_string(), 0.5)];
/// assert!((total_variation(&paper, &measured) - 0.1).abs() < 1e-12);
/// // Identical mixes are at distance zero.
/// assert_eq!(total_variation(&paper, &paper), 0.0);
/// ```
pub fn total_variation(a: &[(String, f64)], b: &[(String, f64)]) -> f64 {
    let mut labels: Vec<&str> = a.iter().chain(b).map(|(l, _)| l.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    let frac = |rows: &[(String, f64)], label: &str| {
        rows.iter().find(|(l, _)| l == label).map(|(_, f)| *f).unwrap_or(0.0)
    };
    0.5 * labels
        .iter()
        .map(|l| (frac(a, l) - frac(b, l)).abs())
        .sum::<f64>()
}

/// Chi-square divergence of a measured mix from the paper's reference
/// mix: `Σ (measured_i − paper_i)² / paper_i` over the paper's labels
/// (sample-size independent, unlike the Pearson statistic).
///
/// Measured mass on labels the paper does not tabulate is ignored —
/// the paper's categories always include a catch-all "Other" row, so a
/// well-formed reference covers the space.
pub fn chi_square(paper: &[(String, f64)], measured: &[(String, f64)]) -> f64 {
    let frac = |rows: &[(String, f64)], label: &str| {
        rows.iter().find(|(l, _)| l == label).map(|(_, f)| *f).unwrap_or(0.0)
    };
    paper
        .iter()
        .filter(|(_, p)| *p > 0.0)
        .map(|(l, p)| {
            let m = frac(measured, l);
            (m - p) * (m - p) / p
        })
        .sum()
}

/// Relative error `|measured − paper| / |paper|`.
///
/// A zero paper value with a nonzero measurement is infinitely wrong
/// (`f64::INFINITY`); two zeros agree perfectly (`0.0`). Never NaN.
pub fn relative_error(measured: f64, paper: f64) -> f64 {
    if paper == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - paper).abs() / paper.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_picks_worst_reference_point() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        // F(10) = 0.10, F(50) = 0.50.
        let d = ks_at_reference(&e, &[(10.0, 0.20), (50.0, 0.55)]);
        assert!((d - 0.10).abs() < 1e-12);
        assert_eq!(ks_at_reference(&e, &[]), 0.0);
    }

    #[test]
    fn max_and_mean_abs() {
        let pairs = [(0.2, 0.25), (0.5, 0.4)];
        assert!((max_abs_delta(&pairs) - 0.1).abs() < 1e-12);
        assert!((mean_abs_error(&pairs) - 0.075).abs() < 1e-12);
        assert_eq!(mean_abs_error(&[]), 0.0);
        assert_eq!(max_abs_delta(&[]), 0.0);
    }

    #[test]
    fn total_variation_handles_disjoint_labels() {
        let a = [("x".to_string(), 1.0)];
        let b = [("y".to_string(), 1.0)];
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&[], &[]), 0.0);
    }

    #[test]
    fn total_variation_is_symmetric() {
        let a = [("m".to_string(), 0.7), ("b".to_string(), 0.3)];
        let b = [("m".to_string(), 0.55), ("b".to_string(), 0.25), ("o".to_string(), 0.20)];
        let d = total_variation(&a, &b);
        assert!((d - total_variation(&b, &a)).abs() < 1e-15);
        assert!((d - 0.20).abs() < 1e-12);
    }

    #[test]
    fn chi_square_ignores_untabulated_measured_mass() {
        let paper = [("a".to_string(), 0.5), ("b".to_string(), 0.5)];
        let measured =
            [("a".to_string(), 0.4), ("b".to_string(), 0.5), ("tail".to_string(), 0.1)];
        let d = chi_square(&paper, &measured);
        assert!((d - 0.01 / 0.5).abs() < 1e-12);
        assert_eq!(chi_square(&paper, &paper), 0.0);
    }

    #[test]
    fn relative_error_edges() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
        assert!(!relative_error(f64::MIN_POSITIVE, f64::MAX).is_nan());
    }
}
