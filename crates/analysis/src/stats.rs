//! Statistical primitives.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are rejected loudly — a NaN in a latency
    /// dataset is always an upstream bug).
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1), nearest-rank.
    ///
    /// # Panics
    /// Panics on an empty ECDF or q outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Sample mean (0.0 on an empty ECDF).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Evaluate at several thresholds, returning `(x, P(X ≤ x))` pairs —
    /// handy for rendering CDF figures.
    pub fn evaluate_at(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| (*x, self.fraction_at_or_below(*x))).collect()
    }
}

/// A fixed-width histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower bound of the first bin.
    pub lo: f64,
    /// Width of every bin.
    pub bin_width: f64,
    /// Per-bin sample counts.
    pub counts: Vec<u64>,
    /// Samples above the last bin.
    pub overflow: u64,
}

impl Histogram {
    /// Build with `bins` bins of `bin_width` starting at `lo`.
    ///
    /// # Panics
    /// Panics on zero bins or non-positive width.
    pub fn new(lo: f64, bin_width: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(bin_width > 0.0, "bin width must be positive");
        Histogram { lo, bin_width, counts: vec![0; bins], overflow: 0 }
    }

    /// Count one sample into its bin.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            // Clamp into the first bin (latency data has no negatives;
            // clamping keeps the histogram total equal to sample count).
            self.counts[0] += 1;
            return;
        }
        let idx = ((x - self.lo) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples counted, including overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Fraction of samples in bins `[0, upto_bin)`.
    pub fn fraction_below_bin(&self, upto_bin: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n: u64 = self.counts.iter().take(upto_bin).sum();
        n as f64 / t as f64
    }
}

/// An hourly event-count series (Figure 6's x-axis).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HourlySeries {
    /// Events per simulated hour, index 0 = the first hour.
    pub counts: Vec<u32>,
}

impl HourlySeries {
    /// Wrap raw per-hour counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        HourlySeries { counts }
    }

    /// Total events across all hours.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| *c as u64).sum()
    }

    /// Average of several same-length-or-shorter series, per hour —
    /// the "average number of submitted credentials over time" panel.
    pub fn average(series: &[HourlySeries]) -> Vec<f64> {
        let max_len = series.iter().map(|s| s.counts.len()).max().unwrap_or(0);
        let mut out = vec![0.0; max_len];
        if series.is_empty() {
            return out;
        }
        for (h, slot) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for s in series {
                sum += *s.counts.get(h).unwrap_or(&0) as f64;
            }
            *slot = sum / series.len() as f64;
        }
        out
    }

    /// Whether the series is broadly decaying: the mean of the first
    /// quarter exceeds `factor` × the mean of the last quarter. Used by
    /// tests asserting the Figure 6 standard pattern.
    pub fn is_decaying(&self, factor: f64) -> bool {
        let n = self.counts.len();
        if n < 4 {
            return false;
        }
        let q = n / 4;
        let head: f64 = self.counts[..q].iter().map(|c| *c as f64).sum::<f64>() / q as f64;
        let tail: f64 =
            self.counts[n - q..].iter().map(|c| *c as f64).sum::<f64>() / q as f64;
        head > factor * tail.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(4.0));
        assert_eq!(e.fraction_at_or_below(2.0), 0.5);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(10.0), 1.0);
        assert_eq!(e.mean(), 2.5);
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.2), 20.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(0.0), 1.0);
    }

    #[test]
    fn ecdf_is_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 9.0, 3.0, 3.0, 7.0]);
        let mut prev = 0.0;
        for x in 0..12 {
            let f = e.fraction_at_or_below(x as f64);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        Ecdf::new(vec![]).quantile(0.5);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for x in [0.1, 0.9, 1.5, 4.9, 7.0, -1.0] {
            h.add(x);
        }
        assert_eq!(h.counts, vec![3, 1, 0, 0, 1]); // -1 clamps into bin 0
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 6);
        assert!((h.fraction_below_bin(2) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hourly_average() {
        let a = HourlySeries::from_counts(vec![4, 2, 0]);
        let b = HourlySeries::from_counts(vec![2, 0]);
        let avg = HourlySeries::average(&[a, b]);
        assert_eq!(avg, vec![3.0, 1.0, 0.0]);
        assert!(HourlySeries::average(&[]).is_empty());
    }

    #[test]
    fn decay_detection() {
        let decaying = HourlySeries::from_counts(vec![100, 80, 60, 40, 20, 10, 5, 2]);
        assert!(decaying.is_decaying(3.0));
        let flat = HourlySeries::from_counts(vec![50, 48, 52, 49, 51, 50, 49, 50]);
        assert!(!flat.is_decaying(3.0));
        let short = HourlySeries::from_counts(vec![5, 1]);
        assert!(!short.is_decaying(1.0));
    }
}
