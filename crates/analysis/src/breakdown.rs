//! Categorical breakdowns.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A counted categorical breakdown with stable (insertion-independent)
/// ordering: categories sort by descending count, ties by label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Breakdown {
    counts: BTreeMap<String, u64>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one observation of `label`.
    pub fn add(&mut self, label: impl Into<String>) {
        *self.counts.entry(label.into()).or_insert(0) += 1;
    }

    /// Count `n` observations.
    pub fn add_n(&mut self, label: impl Into<String>, n: u64) {
        *self.counts.entry(label.into()).or_insert(0) += n;
    }

    /// Total observations across every label.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count recorded for `label` (0 when absent).
    pub fn count_of(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// `label`'s share of the total (0.0 on an empty breakdown).
    pub fn fraction_of(&self, label: &str) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count_of(label) as f64 / t as f64
        }
    }

    /// `(label, count, fraction)` rows, descending by count.
    pub fn rows(&self) -> Vec<(String, u64, f64)> {
        let t = self.total().max(1);
        let mut rows: Vec<_> = self
            .counts
            .iter()
            .map(|(l, c)| (l.clone(), *c, *c as f64 / t as f64))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Top-k rows.
    pub fn top(&self, k: usize) -> Vec<(String, u64, f64)> {
        self.rows().into_iter().take(k).collect()
    }

    /// Number of distinct labels.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// `(label, fraction)` rows in descending-count order — the input
    /// shape [`crate::distance::total_variation`] and
    /// [`crate::distance::chi_square`] compare against the paper's
    /// published mixes.
    pub fn fractions(&self) -> Vec<(String, f64)> {
        self.rows().into_iter().map(|(l, _, f)| (l, f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_fractions() {
        let mut b = Breakdown::new();
        for _ in 0..3 {
            b.add("mail");
        }
        b.add("bank");
        assert_eq!(b.total(), 4);
        assert_eq!(b.count_of("mail"), 3);
        assert_eq!(b.count_of("missing"), 0);
        assert!((b.fraction_of("mail") - 0.75).abs() < 1e-12);
        assert_eq!(b.distinct(), 2);
    }

    #[test]
    fn rows_sorted_desc_with_stable_ties() {
        let mut b = Breakdown::new();
        b.add_n("b", 5);
        b.add_n("a", 5);
        b.add_n("c", 9);
        let rows = b.rows();
        assert_eq!(rows[0].0, "c");
        assert_eq!(rows[1].0, "a"); // tie broken alphabetically
        assert_eq!(rows[2].0, "b");
    }

    #[test]
    fn top_k_truncates() {
        let mut b = Breakdown::new();
        for i in 0..10 {
            b.add_n(format!("l{i}"), i + 1);
        }
        let top = b.top(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].1, 10);
    }

    #[test]
    fn empty_breakdown() {
        let b = Breakdown::new();
        assert_eq!(b.total(), 0);
        assert_eq!(b.fraction_of("x"), 0.0);
        assert!(b.rows().is_empty());
        assert!(b.fractions().is_empty());
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = Breakdown::new();
        b.add_n("a", 3);
        b.add_n("b", 1);
        let f = b.fractions();
        assert_eq!(f[0], ("a".to_string(), 0.75));
        assert!((f.iter().map(|(_, x)| x).sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
