//! # mhw-analysis
//!
//! The measurement/statistics toolkit the experiments are written in:
//!
//! * [`stats`] — ECDFs, percentiles, histograms and hourly time series
//!   (the shapes behind Figures 5–9);
//! * [`breakdown`] — categorical breakdown tables (Tables 2–3, Figures
//!   3, 4, 10, 11, 12);
//! * [`distance`] — distance metrics between measured shapes and the
//!   paper's published numbers (KS statistics for CDF targets, total
//!   variation / chi-square for categorical mixes, relative-error bands
//!   for scalars) that drive the `repro --validate` fidelity scorecard;
//! * [`render`] — plain-text rendering of tables, bar charts and
//!   series, plus the paper-vs-measured [`Comparison`]
//!   rows that `repro` writes into EXPERIMENTS.md.
//!
//! Everything operates on plain numbers extracted from the substrates'
//! logs; nothing in here knows about hijackers.

#![deny(missing_docs)]

pub mod breakdown;
pub mod distance;
pub mod render;
pub mod stats;

pub use breakdown::Breakdown;
pub use render::{bar_chart, markdown_table, Comparison, ComparisonTable};
pub use stats::{Ecdf, Histogram, HourlySeries};
