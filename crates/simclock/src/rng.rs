//! Deterministic random streams and distributions.
//!
//! Every stochastic model in the workspace draws from a [`SimRng`], which
//! is an `rand::rngs::StdRng` seeded from a `(master_seed, label)` pair.
//! Labelled sub-streams decouple models from one another: adding draws to
//! the phishing model cannot perturb the hijacker model, so calibration
//! experiments stay comparable across code changes.
//!
//! The distribution helpers (exponential, normal, log-normal, Poisson,
//! weighted choice) are implemented directly over uniform draws rather
//! than pulling in `rand_distr`, keeping the dependency set to the
//! approved offline list.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream.
///
/// `Clone` duplicates the exact generator position: the clone and the
/// original produce identical draw sequences from the clone point, which
/// is what lets forked worlds replay a snapshot's RNG state verbatim.
#[derive(Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Seed a stream directly.
    pub fn from_seed(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent labelled sub-stream. The label is hashed
    /// (FNV-1a) into the seed, so distinct labels give statistically
    /// independent streams and the mapping is stable across runs and
    /// platforms.
    pub fn stream(master_seed: u64, label: &str) -> Self {
        SimRng::from_seed(master_seed ^ mhw_types::fnv::digest(label.as_bytes()))
    }

    /// Derive a labelled sub-stream for one logical shard of a sharded
    /// scenario. Shard 0 is identical to [`SimRng::stream`], so a
    /// single-shard run reproduces the unsharded simulator bit-for-bit;
    /// non-zero shards mix the shard id into the master seed before
    /// labelling, giving every `(shard, label)` pair an independent
    /// stream. The shard id is part of scenario *semantics* (like the
    /// seed) — worker-thread counts never appear here, which is what
    /// makes sharded runs reproducible at any parallelism level.
    pub fn shard_stream(master_seed: u64, shard: u16, label: &str) -> Self {
        let mixed = master_seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::stream(mixed, label)
    }

    /// Derive a child stream from this one (e.g. one stream per agent).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::from_seed(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - U is in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal variate (Box–Muller; one of the pair is discarded
    /// for simplicity — throughput is irrelevant at our scales).
    pub fn normal_std(&mut self) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal_std()
    }

    /// Log-normal variate parameterized by the *underlying* normal's
    /// `mu`/`sigma` (so the median is `exp(mu)`). Heavy-tailed durations
    /// — profiling time, exploitation time, recovery delay — use this.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson variate.
    ///
    /// Knuth's product method for small λ; for λ > 30 a normal
    /// approximation with continuity correction, which is plenty for
    /// arrival counting.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Pick an index according to non-negative `weights`. Returns `None`
    /// if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 {
                x -= *w;
                if x <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Choose an element uniformly. Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir sampling;
    /// result order is not specified). If `k >= n`, returns all indices.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }

    /// Raw access for interop with `rand` traits.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// The exact stream position (the generator's raw state words).
    /// Checkpointing captures this so a resumed run can verify its
    /// replayed streams sit at precisely the recorded positions.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuild a stream at a position captured with [`SimRng::state`].
    pub fn from_state(state: [u64; 4]) -> Self {
        SimRng { inner: StdRng::from_state(state) }
    }

    /// Deterministically reseed this stream from its current position
    /// mixed with `salt`. Used when forking a world with a divergent
    /// seed: the perturbed stream depends on both the snapshot position
    /// (so distinct fork points diverge differently) and the salt (so
    /// distinct fork seeds diverge from one another), while the same
    /// `(position, salt)` pair always yields the same stream.
    pub fn perturb(&mut self, salt: u64) {
        let mut h = mhw_types::fnv::OFFSET;
        for w in self.state() {
            h = mhw_types::fnv::fnv1a(h, &w.to_le_bytes());
        }
        h = mhw_types::fnv::fnv1a(h, &salt.to_le_bytes());
        *self = SimRng::from_seed(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn labelled_streams_differ() {
        let mut a = SimRng::stream(1, "phishing");
        let mut b = SimRng::stream(1, "hijacker");
        let va: Vec<u64> = (0..8).map(|_| a.below(1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.below(1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn labelled_streams_reproducible() {
        let mut a = SimRng::stream(7, "x");
        let mut b = SimRng::stream(7, "x");
        assert_eq!(a.below(u64::MAX), b.below(u64::MAX));
    }

    #[test]
    fn shard_zero_matches_unsharded_stream() {
        let mut a = SimRng::stream(99, "world");
        let mut b = SimRng::shard_stream(99, 0, "world");
        for _ in 0..32 {
            assert_eq!(a.below(u64::MAX), b.below(u64::MAX));
        }
        let mut c = SimRng::shard_stream(99, 1, "world");
        let va: Vec<u64> = (0..8).map(|_| SimRng::shard_stream(99, 0, "world").below(1 << 50)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.below(1 << 50)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::from_seed(5);
        let mut parent2 = SimRng::from_seed(5);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.below(1 << 40), c2.below(1 << 40));
        let mut c3 = parent1.fork(1);
        assert_ne!(c1.below(1 << 40), c3.below(1 << 40));
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = SimRng::from_seed(123);
        for _ in 0..17 {
            a.f64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.below(u64::MAX), b.below(u64::MAX));
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::from_seed(11);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let m = total / n as f64;
        assert!((m - mean).abs() < 0.15, "sample mean {m}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::from_seed(13);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let m: f64 = xs.iter().sum::<f64>() / n as f64;
        let v: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = SimRng::from_seed(17);
        let n = 40_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(1.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 1.0f64.exp()).abs() < 0.12, "median {median}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = SimRng::from_seed(19);
        let n = 30_000;
        let total: u64 = (0..n).map(|_| r.poisson(2.5)).sum();
        let m = total as f64 / n as f64;
        assert!((m - 2.5).abs() < 0.06, "mean {m}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut r = SimRng::from_seed(23);
        let n = 10_000;
        let total: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let m = total as f64 / n as f64;
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::from_seed(29);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[r.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut r = SimRng::from_seed(31);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = SimRng::from_seed(37);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[9]), Some(&9));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        assert_ne!(v, orig); // astronomically unlikely to be identity
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig); // permutation
    }

    #[test]
    fn sample_indices_properties() {
        let mut r = SimRng::from_seed(41);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut uniq = s.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        assert!(uniq.iter().all(|i| *i < 100));
        // k >= n returns everything.
        assert_eq!(r.sample_indices(5, 9), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_indices_is_unbiased_enough() {
        // Every index should be picked roughly k/n of the time.
        let mut hits = [0u32; 20];
        for seed in 0..4000 {
            let mut r = SimRng::from_seed(seed);
            for i in r.sample_indices(20, 5) {
                hits[i] += 1;
            }
        }
        let expected = 4000.0 * 5.0 / 20.0; // 1000
        for (i, h) in hits.iter().enumerate() {
            assert!(
                (*h as f64 - expected).abs() < 120.0,
                "index {i} hit {h} times (expected ~{expected})"
            );
        }
    }
}
