//! Time-ordered event queue.
//!
//! A thin wrapper around `BinaryHeap` that orders events by
//! `(time, sequence)`: earliest time first, and FIFO among events
//! scheduled for the same instant. Stable tie-breaking is what makes a
//! whole scenario run a pure function of its seed — `BinaryHeap` alone
//! is not stable.

use mhw_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (and, at equal times, the lowest sequence number) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue over an arbitrary event payload type.
///
/// ```
/// use mhw_simclock::EventQueue;
/// use mhw_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(5), "a");
/// q.schedule(SimTime::from_secs(10), "c"); // same instant as "b": FIFO
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::EPOCH }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation; the queue clamps such events to `now` rather than
    /// violating clock monotonicity, which keeps downstream log records
    /// time-ordered even if a model computes a sloppy timestamp.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the next event, advancing the simulation clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pop the next event only if it occurs at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![(t(10), 1), (t(20), 2), (t(30), 3)]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(7), i);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "a");
        q.schedule(t(9), "b");
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), t(5));
        q.pop();
        assert_eq!(q.now(), t(9));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "later");
        q.pop();
        q.schedule(t(1), "stale"); // in the past now
        let (when, what) = q.pop().unwrap();
        assert_eq!(what, "stale");
        assert_eq!(when, t(100)); // clamped, clock stays monotone
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "x");
        assert!(q.pop_before(t(9)).is_none());
        assert_eq!(q.pop_before(t(10)).unwrap().1, "x");
        assert!(q.pop_before(t(1000)).is_none()); // empty
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
