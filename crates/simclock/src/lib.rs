//! # mhw-simclock
//!
//! Discrete-event simulation kernel for the manual-hijacking ecosystem.
//!
//! The kernel provides:
//! * [`EventQueue`] — a time-ordered priority queue with stable FIFO
//!   ordering for simultaneous events, the beating heart of every
//!   scenario run;
//! * [`SimRng`] — deterministic, independently seeded random streams plus
//!   the distributions the behavioral models need (exponential,
//!   log-normal, Poisson, weighted choice). Determinism is a hard
//!   requirement: a scenario seed fully determines every dataset;
//! * [`Schedule`] — calendar/office-hours modelling
//!   used for hijacker crews ("started around the same time every day,
//!   … synchronized one-hour lunch break … largely inactive over the
//!   weekends", §5.5) and for diurnal user activity;
//! * [`arrivals`] — Poisson/diurnal arrival processes for organic traffic
//!   and campaign click streams.
//!
//! All distributions are implemented from first principles over `rand`'s
//! uniform source, so the workspace needs no additional statistics crates
//! and results are reproducible across platforms.

pub mod arrivals;
pub mod calendar;
pub mod queue;
pub mod rng;

pub use arrivals::{DiurnalProfile, PoissonProcess};
pub use calendar::{OfficeHours, Schedule};
pub use queue::EventQueue;
pub use rng::SimRng;
