//! Office-hours and availability schedules.
//!
//! §5.5 of the paper ("Manual Hijacking — an Ordinary Office Job?")
//! observed that hijacker crews start around the same time every day,
//! take a synchronized one-hour lunch break, and are largely inactive on
//! weekends. [`Schedule`] encodes exactly that availability pattern in
//! the crew's local timezone, and is also reused (without lunch break)
//! for diurnal user-activity gating.

use mhw_types::{SimDuration, SimTime, DAY, HOUR};

/// Daily working window in local hours, with an optional lunch break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfficeHours {
    /// First working hour (local), inclusive, e.g. 9.
    pub start_hour: u32,
    /// Last working hour (local), exclusive, e.g. 18.
    pub end_hour: u32,
    /// Lunch break start (local hour), if the schedule has one.
    pub lunch_hour: Option<u32>,
}

impl OfficeHours {
    /// The paper's crew pattern: 9:00–18:00 with a 13:00 lunch hour.
    pub fn crew_default() -> Self {
        OfficeHours { start_hour: 9, end_hour: 18, lunch_hour: Some(13) }
    }

    /// Whether `local_hour` falls inside the working window.
    pub fn is_working_hour(&self, local_hour: u32) -> bool {
        if let Some(lunch) = self.lunch_hour {
            if local_hour == lunch {
                return false;
            }
        }
        if self.start_hour <= self.end_hour {
            (self.start_hour..self.end_hour).contains(&local_hour)
        } else {
            // Overnight window (e.g. 22–06) — not used by crews but
            // supported for night-shift user models.
            local_hour >= self.start_hour || local_hour < self.end_hour
        }
    }
}

/// A full weekly availability schedule in a fixed timezone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    pub hours: OfficeHours,
    /// Whole-hour UTC offset of the schedule's local timezone.
    pub utc_offset_hours: i32,
    /// Whether weekends are worked. Paper crews: no.
    pub works_weekends: bool,
}

impl Schedule {
    /// A crew schedule in the given timezone (9–18 local, lunch at 13,
    /// weekends off).
    pub fn crew(utc_offset_hours: i32) -> Self {
        Schedule {
            hours: OfficeHours::crew_default(),
            utc_offset_hours,
            works_weekends: false,
        }
    }

    /// An always-on schedule (automated systems).
    pub fn always_on() -> Self {
        Schedule {
            hours: OfficeHours { start_hour: 0, end_hour: 24, lunch_hour: None },
            utc_offset_hours: 0,
            works_weekends: true,
        }
    }

    /// Is the schedule active at instant `t`?
    pub fn is_active(&self, t: SimTime) -> bool {
        if !self.works_weekends && t.local_weekday(self.utc_offset_hours).is_weekend() {
            return false;
        }
        self.hours.is_working_hour(t.local_hour(self.utc_offset_hours))
    }

    /// The earliest instant `>= t` at which the schedule is active.
    ///
    /// Scans hour boundaries; bounded by one week of hours plus one, so it
    /// always terminates for any schedule with at least one active hour.
    ///
    /// # Panics
    /// Panics if the schedule has no active hour at all.
    pub fn next_active(&self, t: SimTime) -> SimTime {
        if self.is_active(t) {
            return t;
        }
        // Jump to the next hour boundary, then scan.
        let mut cursor = SimTime::from_secs(t.as_secs() - t.as_secs() % HOUR + HOUR);
        for _ in 0..(7 * 24 + 1) {
            if self.is_active(cursor) {
                return cursor;
            }
            cursor += SimDuration::from_secs(HOUR);
        }
        panic!("schedule has no active hours");
    }

    /// Remaining active time budget between `t` and the end of `t`'s
    /// active block, in seconds (0 if inactive). Lets agents decide
    /// whether a task fits before lunch / close of business.
    pub fn remaining_in_block(&self, t: SimTime) -> SimDuration {
        if !self.is_active(t) {
            return SimDuration::ZERO;
        }
        let mut end = SimTime::from_secs(t.as_secs() - t.as_secs() % HOUR + HOUR);
        // Extend across consecutive active hours (bounded by a day).
        for _ in 0..24 {
            if self.is_active(end) {
                end += SimDuration::from_secs(HOUR);
            } else {
                break;
            }
        }
        end.since(t)
    }

    /// Working seconds in the UTC day containing `t` (used to calibrate
    /// crew daily throughput).
    pub fn active_seconds_in_day(&self, t: SimTime) -> u64 {
        let day_start = t.start_of_day();
        (0..24)
            .filter(|h| self.is_active(day_start + SimDuration::from_hours(*h)))
            .count() as u64
            * HOUR
    }

    /// Total scheduled seconds across a full week starting at `t`'s day.
    pub fn active_seconds_in_week(&self, t: SimTime) -> u64 {
        let day_start = t.start_of_day();
        (0..7)
            .map(|d| self.active_seconds_in_day(day_start + SimDuration::from_secs(d * DAY)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::{SimTime, HOUR};

    fn at(day: u64, hour: u64) -> SimTime {
        SimTime::from_secs(day * DAY + hour * HOUR)
    }

    #[test]
    fn crew_hours_window() {
        let h = OfficeHours::crew_default();
        assert!(!h.is_working_hour(8));
        assert!(h.is_working_hour(9));
        assert!(h.is_working_hour(12));
        assert!(!h.is_working_hour(13)); // lunch
        assert!(h.is_working_hour(14));
        assert!(h.is_working_hour(17));
        assert!(!h.is_working_hour(18));
    }

    #[test]
    fn overnight_window() {
        let h = OfficeHours { start_hour: 22, end_hour: 6, lunch_hour: None };
        assert!(h.is_working_hour(23));
        assert!(h.is_working_hour(3));
        assert!(!h.is_working_hour(12));
    }

    #[test]
    fn crew_inactive_on_weekend() {
        let s = Schedule::crew(0);
        // Day 5 from Monday epoch is Saturday.
        assert!(!s.is_active(at(5, 10)));
        assert!(!s.is_active(at(6, 10)));
        assert!(s.is_active(at(4, 10))); // Friday 10:00
    }

    #[test]
    fn crew_lunch_break_observed() {
        let s = Schedule::crew(0);
        assert!(s.is_active(at(0, 12)));
        assert!(!s.is_active(at(0, 13)));
        assert!(s.is_active(at(0, 14)));
    }

    #[test]
    fn timezone_shifts_window() {
        // A UTC+8 crew (China) working 9–18 local is active 01:00–10:00 UTC.
        let s = Schedule::crew(8);
        assert!(s.is_active(at(0, 2))); // 10:00 local
        assert!(!s.is_active(at(0, 12))); // 20:00 local
    }

    #[test]
    fn next_active_rolls_past_lunch_and_night() {
        let s = Schedule::crew(0);
        // At 13:30 (lunch), next active is 14:00.
        let t = SimTime::from_secs(13 * HOUR + 30 * 60);
        assert_eq!(s.next_active(t), SimTime::from_secs(14 * HOUR));
        // At 20:00 Monday, next active is Tuesday 09:00.
        assert_eq!(s.next_active(at(0, 20)), at(1, 9));
    }

    #[test]
    fn next_active_skips_weekend() {
        let s = Schedule::crew(0);
        // Friday 19:00 → Monday 09:00 (days 4 → 7).
        assert_eq!(s.next_active(at(4, 19)), at(7, 9));
    }

    #[test]
    fn next_active_identity_when_active() {
        let s = Schedule::crew(0);
        let t = at(1, 10).plus(SimDuration::from_mins(17));
        assert_eq!(s.next_active(t), t);
    }

    #[test]
    fn remaining_in_block() {
        let s = Schedule::crew(0);
        // At 11:30 the block runs until 13:00 → 1.5h.
        let t = SimTime::from_secs(11 * HOUR + 30 * 60);
        assert_eq!(s.remaining_in_block(t).as_secs(), 90 * 60);
        // Inactive → zero.
        assert_eq!(s.remaining_in_block(at(0, 20)), SimDuration::ZERO);
    }

    #[test]
    fn weekly_budget_matches_8h_times_5d() {
        let s = Schedule::crew(0);
        // 9–18 minus lunch = 8h/day, 5 days.
        assert_eq!(s.active_seconds_in_day(at(0, 0)), 8 * HOUR);
        assert_eq!(s.active_seconds_in_week(at(0, 0)), 5 * 8 * HOUR);
    }

    #[test]
    fn always_on_never_sleeps() {
        let s = Schedule::always_on();
        for d in 0..7 {
            for h in 0..24 {
                assert!(s.is_active(at(d, h)));
            }
        }
        assert_eq!(s.active_seconds_in_week(at(0, 0)), 7 * 24 * HOUR);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mhw_types::SimTime;
    use proptest::prelude::*;

    proptest! {
        /// next_active always lands on an active instant at or after t.
        #[test]
        fn next_active_is_active_and_not_before(
            t in 0u64..(30 * mhw_types::DAY),
            offset in -11i32..=12,
        ) {
            let s = Schedule::crew(offset);
            let at = SimTime::from_secs(t);
            let next = s.next_active(at);
            prop_assert!(next >= at);
            prop_assert!(s.is_active(next));
        }

        /// remaining_in_block is zero iff inactive, and the block really
        /// stays active for that long.
        #[test]
        fn remaining_block_is_consistent(t in 0u64..(14 * mhw_types::DAY)) {
            let s = Schedule::crew(0);
            let at = SimTime::from_secs(t);
            let remaining = s.remaining_in_block(at);
            if s.is_active(at) {
                prop_assert!(remaining.as_secs() > 0);
                // One second before the block ends it is still active.
                let just_before = SimTime::from_secs(t + remaining.as_secs() - 1);
                prop_assert!(s.is_active(just_before));
            } else {
                prop_assert_eq!(remaining.as_secs(), 0);
            }
        }

        /// Weekly active budget never exceeds 5 × 8 hours for crews.
        #[test]
        fn weekly_budget_bounded(start_day in 0u64..60) {
            let s = Schedule::crew(3);
            let t = SimTime::from_secs(start_day * mhw_types::DAY);
            prop_assert!(s.active_seconds_in_week(t) <= 5 * 8 * HOUR);
        }
    }
}
