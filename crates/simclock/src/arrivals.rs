//! Arrival processes.
//!
//! Two arrival shapes recur throughout the paper's traffic:
//!
//! * Phishing-page click streams (Figure 6) decay from an initial burst
//!   ("consistent with a mass mailed email, with clicks centered around
//!   the initial delivery time"), while the one large outlier campaign
//!   shows a *diurnal* plateau over several days.
//! * Organic user activity follows day/night cycles.
//!
//! [`PoissonProcess`] generates inter-arrival times for a (possibly
//! time-varying) rate via thinning; [`DiurnalProfile`] provides the
//! day-shaped modulation.

use crate::rng::SimRng;
use mhw_types::{SimDuration, SimTime, DAY, HOUR};

/// A 24-hour rate-modulation profile: a multiplicative factor per UTC
/// hour, normalized so the daily mean factor is 1.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    factors: [f64; 24],
}

impl DiurnalProfile {
    /// Flat profile (no modulation).
    pub fn flat() -> Self {
        DiurnalProfile { factors: [1.0; 24] }
    }

    /// A gentle human diurnal curve peaking mid-day in the given
    /// timezone: factor ~0.3 at night, ~1.6 at the 14:00 local peak.
    pub fn human(utc_offset_hours: i32) -> Self {
        let mut factors = [0.0f64; 24];
        for (utc_h, f) in factors.iter_mut().enumerate() {
            let local = (utc_h as i32 + utc_offset_hours).rem_euclid(24) as f64;
            // Cosine bump centred at 14:00 local.
            let phase = (local - 14.0) / 24.0 * std::f64::consts::TAU;
            *f = 1.0 + 0.65 * phase.cos();
        }
        let mean: f64 = factors.iter().sum::<f64>() / 24.0;
        for f in &mut factors {
            *f /= mean;
        }
        DiurnalProfile { factors }
    }

    /// Build from raw per-hour factors (normalized to mean 1).
    ///
    /// # Panics
    /// Panics if all factors are zero or any is negative.
    pub fn from_factors(raw: [f64; 24]) -> Self {
        assert!(raw.iter().all(|f| *f >= 0.0), "factors must be non-negative");
        let mean: f64 = raw.iter().sum::<f64>() / 24.0;
        assert!(mean > 0.0, "at least one factor must be positive");
        let mut factors = raw;
        for f in &mut factors {
            *f /= mean;
        }
        DiurnalProfile { factors }
    }

    /// Modulation factor at instant `t`.
    pub fn factor_at(&self, t: SimTime) -> f64 {
        self.factors[t.hour_of_day() as usize]
    }

    /// Maximum factor (needed for thinning).
    pub fn max_factor(&self) -> f64 {
        self.factors.iter().copied().fold(0.0, f64::max)
    }
}

/// A (possibly inhomogeneous) Poisson arrival process.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    /// Base rate in events per second.
    rate_per_sec: f64,
    profile: DiurnalProfile,
    /// Optional exponential decay half-life for the base rate, measured
    /// from `origin` — models Figure 6's post-blast click decay.
    decay_half_life: Option<SimDuration>,
    origin: SimTime,
}

impl PoissonProcess {
    /// Homogeneous process at `rate_per_hour`.
    pub fn homogeneous(rate_per_hour: f64) -> Self {
        PoissonProcess {
            rate_per_sec: rate_per_hour / HOUR as f64,
            profile: DiurnalProfile::flat(),
            decay_half_life: None,
            origin: SimTime::EPOCH,
        }
    }

    /// Add a diurnal modulation profile.
    pub fn with_profile(mut self, profile: DiurnalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Add exponential decay of the base rate with the given half-life
    /// from `origin`.
    pub fn with_decay(mut self, half_life: SimDuration, origin: SimTime) -> Self {
        self.decay_half_life = Some(half_life);
        self.origin = origin;
        self
    }

    /// Instantaneous rate (events/second) at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut r = self.rate_per_sec * self.profile.factor_at(t);
        if let Some(hl) = self.decay_half_life {
            let elapsed = t.since(self.origin).as_secs() as f64;
            r *= 0.5f64.powf(elapsed / hl.as_secs() as f64);
        }
        r
    }

    /// Draw the next arrival strictly after `t` using Lewis–Shedler
    /// thinning. Returns `None` if the rate has decayed so far that no
    /// arrival is expected within `horizon`.
    pub fn next_after(
        &self,
        t: SimTime,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        // Upper bound on the rate over [t, horizon].
        let mut rate_max = self.rate_per_sec * self.profile.max_factor();
        if let Some(hl) = self.decay_half_life {
            let elapsed = t.since(self.origin).as_secs() as f64;
            rate_max *= 0.5f64.powf(elapsed / hl.as_secs() as f64);
        }
        if rate_max <= 0.0 {
            return None;
        }
        let mut cursor = t;
        // Bounded iterations: expected thinning acceptance is
        // rate/rate_max; 100k candidate draws is far beyond any workload
        // here and guards against pathological parameters.
        for _ in 0..100_000 {
            let step = rng.exponential(1.0 / rate_max).ceil().max(1.0) as u64;
            cursor = cursor.plus(SimDuration::from_secs(step));
            if cursor > horizon {
                return None;
            }
            if rng.f64() * rate_max <= self.rate_at(cursor) {
                return Some(cursor);
            }
        }
        None
    }

    /// Expected number of events in `[from, to)` (hour-granular
    /// integration; used by tests and calibration, not the hot path).
    pub fn expected_count(&self, from: SimTime, to: SimTime) -> f64 {
        let mut total = 0.0;
        let mut cursor = from;
        while cursor < to {
            let step = (HOUR - cursor.as_secs() % HOUR).min(to.since(cursor).as_secs());
            total += self.rate_at(cursor) * step as f64;
            cursor = cursor.plus(SimDuration::from_secs(step));
        }
        total
    }
}

/// Convenience: expected events per day for a homogeneous hourly rate.
pub fn per_day(rate_per_hour: f64) -> f64 {
    rate_per_hour * (DAY / HOUR) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_is_unit() {
        let p = DiurnalProfile::flat();
        for h in 0..24 {
            assert_eq!(p.factor_at(SimTime::from_secs(h * HOUR)), 1.0);
        }
        assert_eq!(p.max_factor(), 1.0);
    }

    #[test]
    fn human_profile_peaks_afternoon() {
        let p = DiurnalProfile::human(0);
        let peak = p.factor_at(SimTime::from_secs(14 * HOUR));
        let trough = p.factor_at(SimTime::from_secs(2 * HOUR));
        assert!(peak > 1.3, "peak {peak}");
        assert!(trough < 0.7, "trough {trough}");
        // Normalized to mean 1.
        let mean: f64 = (0..24)
            .map(|h| p.factor_at(SimTime::from_secs(h * HOUR)))
            .sum::<f64>()
            / 24.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn human_profile_respects_timezone() {
        // UTC+8: local 14:00 peak is at 06:00 UTC.
        let p = DiurnalProfile::human(8);
        let at_6 = p.factor_at(SimTime::from_secs(6 * HOUR));
        let at_14 = p.factor_at(SimTime::from_secs(14 * HOUR));
        assert!(at_6 > at_14);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_factor_rejected() {
        let mut f = [1.0; 24];
        f[3] = -0.1;
        DiurnalProfile::from_factors(f);
    }

    #[test]
    fn homogeneous_rate_counts() {
        let p = PoissonProcess::homogeneous(10.0); // 10/hour
        let day = SimTime::from_secs(DAY);
        let expected = p.expected_count(SimTime::EPOCH, day);
        assert!((expected - 240.0).abs() < 1e-6);
    }

    #[test]
    fn sampled_arrivals_match_expected_rate() {
        let p = PoissonProcess::homogeneous(30.0);
        let mut rng = SimRng::from_seed(101);
        let horizon = SimTime::from_secs(2 * DAY);
        let mut t = SimTime::EPOCH;
        let mut n = 0;
        while let Some(next) = p.next_after(t, horizon, &mut rng) {
            n += 1;
            t = next;
        }
        let expected: f64 = 30.0 * 48.0;
        let sd = expected.sqrt();
        assert!(
            (n as f64 - expected).abs() < 5.0 * sd,
            "got {n}, expected ~{expected}"
        );
    }

    #[test]
    fn decay_halves_rate_each_half_life() {
        let origin = SimTime::EPOCH;
        let p = PoissonProcess::homogeneous(100.0)
            .with_decay(SimDuration::from_hours(5), origin);
        let r0 = p.rate_at(origin);
        let r5 = p.rate_at(SimTime::from_secs(5 * HOUR));
        let r10 = p.rate_at(SimTime::from_secs(10 * HOUR));
        assert!((r5 / r0 - 0.5).abs() < 1e-9);
        assert!((r10 / r0 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn decayed_process_eventually_stops() {
        let p = PoissonProcess::homogeneous(50.0)
            .with_decay(SimDuration::from_hours(2), SimTime::EPOCH);
        let mut rng = SimRng::from_seed(7);
        let horizon = SimTime::from_secs(30 * DAY);
        let mut t = SimTime::EPOCH;
        let mut count = 0u32;
        while let Some(next) = p.next_after(t, horizon, &mut rng) {
            t = next;
            count += 1;
            assert!(count < 10_000, "decay failed to damp the process");
        }
        // Total expected count for rate 50/h with 2h half-life is
        // 50 * 2/ln2 ≈ 144.
        assert!(count > 60 && count < 400, "count {count}");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let p = PoissonProcess::homogeneous(600.0);
        let mut rng = SimRng::from_seed(3);
        let horizon = SimTime::from_secs(DAY);
        let mut t = SimTime::EPOCH;
        while let Some(next) = p.next_after(t, horizon, &mut rng) {
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn per_day_helper() {
        assert_eq!(per_day(10.0), 240.0);
    }
}
