//! The contact graph.
//!
//! Users' contact lists are the hijackers' target-selection mechanism
//! (§5.3): crews phish "the victim's contacts … to leverage the
//! sometimes more lenient and trusting treatment given … to emails
//! originating from a person's regular contact". The graph is built as
//! clustered communities (colleagues/families) with sparse long-range
//! links, so that hijacking risk propagates through neighbourhoods the
//! way the paper's 36× measurement implies.

use mhw_simclock::SimRng;
use mhw_types::AccountId;

/// An undirected contact graph over internal accounts.
#[derive(Debug, Clone)]
pub struct ContactGraph {
    adjacency: Vec<Vec<AccountId>>,
}

impl ContactGraph {
    /// Build a clustered graph over `n` accounts.
    ///
    /// Accounts are partitioned into communities of `community_size`
    /// (last one possibly smaller); within a community each pair is
    /// connected with probability `p_within`; additionally each node
    /// gets `long_links` uniform random links outside its community.
    pub fn clustered(
        n: usize,
        community_size: usize,
        p_within: f64,
        long_links: usize,
        rng: &mut SimRng,
    ) -> Self {
        assert!(community_size >= 2, "communities need at least 2 members");
        let mut adjacency: Vec<Vec<AccountId>> = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<AccountId>>, a: usize, b: usize| {
            if a == b {
                return;
            }
            let (ai, bi) = (AccountId::from_index(a), AccountId::from_index(b));
            if !adj[a].contains(&bi) {
                adj[a].push(bi);
                adj[b].push(ai);
            }
        };
        // Communities.
        let mut start = 0;
        while start < n {
            let end = (start + community_size).min(n);
            for a in start..end {
                for b in (a + 1)..end {
                    if rng.chance(p_within) {
                        connect(&mut adjacency, a, b);
                    }
                }
            }
            start = end;
        }
        // Long-range links.
        if n > community_size {
            for a in 0..n {
                for _ in 0..long_links {
                    let b = rng.below(n as u64) as usize;
                    let same_community = a / community_size == b / community_size;
                    if !same_community {
                        connect(&mut adjacency, a, b);
                    }
                }
            }
        }
        ContactGraph { adjacency }
    }

    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Contacts of one account.
    pub fn contacts_of(&self, a: AccountId) -> &[AccountId] {
        &self.adjacency[a.index()]
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        self.adjacency.iter().map(|v| v.len()).sum::<usize>() as f64
            / self.adjacency.len() as f64
    }

    /// Sample up to `k` distinct contacts of `a`.
    pub fn sample_contacts(&self, a: AccountId, k: usize, rng: &mut SimRng) -> Vec<AccountId> {
        let contacts = self.contacts_of(a);
        let idx = rng.sample_indices(contacts.len(), k);
        idx.into_iter().map(|i| contacts[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_symmetric_and_loop_free() {
        let mut rng = SimRng::from_seed(5);
        let g = ContactGraph::clustered(200, 25, 0.3, 2, &mut rng);
        assert_eq!(g.len(), 200);
        for a in 0..200 {
            let ai = AccountId::from_index(a);
            for b in g.contacts_of(ai) {
                assert_ne!(*b, ai, "self loop at {a}");
                assert!(
                    g.contacts_of(*b).contains(&ai),
                    "edge {a}-{b} not symmetric"
                );
            }
        }
    }

    #[test]
    fn no_duplicate_edges() {
        let mut rng = SimRng::from_seed(6);
        let g = ContactGraph::clustered(150, 30, 0.5, 3, &mut rng);
        for a in 0..150 {
            let c = g.contacts_of(AccountId::from_index(a));
            let mut sorted: Vec<_> = c.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), c.len(), "duplicates at node {a}");
        }
    }

    #[test]
    fn clustering_dominates_long_links() {
        let mut rng = SimRng::from_seed(7);
        let community = 20;
        let g = ContactGraph::clustered(400, community, 0.4, 1, &mut rng);
        let mut within = 0usize;
        let mut across = 0usize;
        for a in 0..400 {
            for b in g.contacts_of(AccountId::from_index(a)) {
                if a / community == b.index() / community {
                    within += 1;
                } else {
                    across += 1;
                }
            }
        }
        assert!(within > 2 * across, "within {within}, across {across}");
        assert!(across > 0, "long links must exist");
    }

    #[test]
    fn mean_degree_matches_parameters() {
        let mut rng = SimRng::from_seed(8);
        // Community of 20, p=0.4 → ~7.6 within-links; +~2 long links.
        let g = ContactGraph::clustered(1000, 20, 0.4, 1, &mut rng);
        let d = g.mean_degree();
        assert!((7.0..13.0).contains(&d), "mean degree {d}");
    }

    #[test]
    fn sample_contacts_bounds() {
        let mut rng = SimRng::from_seed(9);
        let g = ContactGraph::clustered(60, 20, 0.8, 0, &mut rng);
        let a = AccountId(0);
        let all = g.contacts_of(a).len();
        let s = g.sample_contacts(a, 5, &mut rng);
        assert_eq!(s.len(), 5.min(all));
        let big = g.sample_contacts(a, 100, &mut rng);
        assert_eq!(big.len(), all);
    }

    #[test]
    fn small_graph_edge_cases() {
        let mut rng = SimRng::from_seed(10);
        let g = ContactGraph::clustered(2, 2, 1.0, 0, &mut rng);
        assert_eq!(g.contacts_of(AccountId(0)), &[AccountId(1)]);
        assert!(!g.is_empty());
    }
}
