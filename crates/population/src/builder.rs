//! Population construction.
//!
//! Builds the whole user base and registers it with every substrate:
//! mail accounts, credentials, recovery options (coverage calibrated to
//! §6.3's channel availability), 2FA enrolment, the contact graph, and
//! seeded mailbox content.

use crate::graph::ContactGraph;
use crate::seed::seed_mailbox;
use crate::user::{sample_activity, UserProfile};
use mhw_identity::{
    CredentialStore, RecoveryEmail, RecoveryOptions, RecoveryPhone, SecretQuestion, TwoFactorState,
};
use mhw_mailsys::{ContactEntry, MailProvider};
use mhw_netmodel::{DomainModel, GeoDb, PhonePlan};
use mhw_simclock::SimRng;
use mhw_types::{CountryCode, DeviceId, EmailAddress, SimTime};

/// Tunable knobs of the population generator.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    pub n_users: usize,
    /// Fraction of users with a recovery phone on file.
    pub phone_coverage: f64,
    /// Fraction of phone-holders whose number is stale.
    pub stale_phone_rate: f64,
    /// Fraction of users with a secondary recovery email.
    pub email_coverage: f64,
    /// Fraction of recovery emails that were mistyped at registration
    /// (§6.3: ≈5% of recovery mail bounces).
    pub mistyped_email_rate: f64,
    /// Fraction of recovery emails recycled by their provider
    /// (§6.3: ≈7% by 2014).
    pub recycled_email_rate: f64,
    /// Fraction of users with a secret question.
    pub question_coverage: f64,
    /// Fraction of users with phone-based 2FA enrolled.
    pub twofactor_rate: f64,
    /// Fraction of users with an unphishable hardware security key
    /// (§8.2's future-work alternative; 0 for the paper's 2012 world).
    pub security_key_rate: f64,
    /// Contact-graph community size.
    pub community_size: usize,
    /// Within-community edge probability.
    pub p_within: f64,
    /// Long-range links per user.
    pub long_links: usize,
    /// Whether to seed mailbox content (slow for very large populations;
    /// measurement scenarios need it, micro-benchmarks may not).
    pub seed_mailboxes: bool,
    /// Multiplier applied to every user's sampled per-day activity
    /// rates (logins, sends, searches). 1.0 is the paper-calibrated
    /// default; the scale-ladder benchmarks turn it down so wall-clock
    /// cost tracks population size rather than event volume.
    pub activity_scale: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            n_users: 2000,
            phone_coverage: 0.55,
            stale_phone_rate: 0.10,
            email_coverage: 0.70,
            mistyped_email_rate: 0.05,
            recycled_email_rate: 0.07,
            question_coverage: 0.55,
            twofactor_rate: 0.05,
            security_key_rate: 0.0,
            community_size: 30,
            p_within: 0.45,
            long_links: 3,
            seed_mailboxes: true,
            activity_scale: 1.0,
        }
    }
}

/// Country mix of the user base (victims are worldwide; weights roughly
/// track large mail providers' user distribution, with enough
/// French/Spanish speakers for the crews' language-targeting to matter).
const USER_COUNTRIES: [(CountryCode, f64); 12] = [
    (CountryCode::US, 30.0),
    (CountryCode::GB, 9.0),
    (CountryCode::FR, 10.0),
    (CountryCode::ES, 6.0),
    (CountryCode::DE, 6.0),
    (CountryCode::IN, 9.0),
    (CountryCode::BR, 7.0),
    (CountryCode::CA, 5.0),
    (CountryCode::AU, 4.0),
    (CountryCode::MX, 6.0),
    (CountryCode::CN, 5.0),
    (CountryCode::VN, 3.0),
];

/// The constructed population plus the substrate handles it registered
/// itself into.
#[derive(Clone)]
pub struct Population {
    pub users: Vec<UserProfile>,
    pub graph: ContactGraph,
}

impl Population {
    pub fn len(&self) -> usize {
        self.users.len()
    }

    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    pub fn user(&self, account: mhw_types::AccountId) -> &UserProfile {
        &self.users[account.index()]
    }
}

/// Builder that populates all identity/mail substrates.
pub struct PopulationBuilder<'a> {
    pub provider: &'a mut MailProvider,
    pub credentials: &'a mut CredentialStore,
    pub options: &'a mut RecoveryOptions,
    pub twofactor: &'a mut TwoFactorState,
    pub phones: &'a mut PhonePlan,
    pub geo: &'a GeoDb,
    pub domains: &'a DomainModel,
}

impl<'a> PopulationBuilder<'a> {
    /// Build `config.n_users` users at time `now` (mailbox content is
    /// backdated before `now`).
    pub fn build(self, config: &PopulationConfig, now: SimTime, rng: &mut SimRng) -> Population {
        let weights: Vec<f64> = USER_COUNTRIES.iter().map(|(_, w)| *w).collect();
        let mut users = Vec::with_capacity(config.n_users);

        for i in 0..config.n_users {
            let country = USER_COUNTRIES[rng.weighted_index(&weights).unwrap()].0;
            let address = EmailAddress::new(format!("user{i}"), self.domains.home.name.clone());
            let account = self.provider.create_account(address.clone());
            debug_assert_eq!(account.index(), i);

            // Credentials: unique synthetic token.
            let password = format!("pw-{i}-{:06}", rng.below(1_000_000));
            self.credentials.register(account, &password);

            // Recovery options per coverage knobs.
            self.options.register(account);
            let phone = if rng.chance(config.phone_coverage) {
                Some(RecoveryPhone {
                    number: self.phones.issue(country, rng),
                    up_to_date: !rng.chance(config.stale_phone_rate),
                    gateway_reliability: sms_gateway_reliability(country),
                })
            } else {
                None
            };
            let email = if rng.chance(config.email_coverage) {
                Some(RecoveryEmail {
                    address: self.domains.random_external_address(
                        rng,
                        i as u64,
                        0.7,
                        0.05,
                        0.25,
                    ),
                    verified: rng.chance(0.5),
                    mistyped: rng.chance(config.mistyped_email_rate),
                    recycled: rng.chance(config.recycled_email_rate),
                })
            } else {
                None
            };
            let question = if rng.chance(config.question_coverage) {
                Some(SecretQuestion {
                    owner_recall: 0.3 + rng.f64() * 0.5,   // 0.3..0.8 (§6.3: poor recall)
                    guessability: 0.05 + rng.f64() * 0.30, // researched answers
                })
            } else {
                None
            };
            self.options.init(account, phone.clone(), email, question);

            // 2FA enrolment: security keys take precedence, then phones.
            self.twofactor.register(account);
            if rng.chance(config.security_key_rate) {
                self.twofactor.enroll_security_key(account, mhw_types::Actor::Owner, now);
            } else if rng.chance(config.twofactor_rate) {
                if let Some(p) = &phone {
                    self.twofactor.enable(account, mhw_types::Actor::Owner, p.number, now);
                }
            }

            let (logins_per_day, sends_per_day, searches_per_day) = sample_activity(rng);
            users.push(UserProfile {
                account,
                address,
                country,
                language: country.language(),
                logins_per_day: logins_per_day * config.activity_scale,
                sends_per_day: sends_per_day * config.activity_scale,
                searches_per_day: searches_per_day * config.activity_scale,
                gullibility: 0.12 + 0.8 * rng.f64() * rng.f64(), // skewed low, floor 0.12
                report_propensity: 0.1 + rng.f64() * 0.5,
                travel_propensity: 0.005 + rng.f64() * 0.03,
                mailbox_value: rng.f64(),
                home_ip: self.geo.random_ip(country, rng),
                device: DeviceId(i as u32),
            });
        }

        // Contact graph + mailbox contact lists.
        let graph = ContactGraph::clustered(
            config.n_users,
            config.community_size.max(2),
            config.p_within,
            config.long_links,
            rng,
        );
        for u in &users {
            for contact in graph.contacts_of(u.account) {
                let entry = ContactEntry {
                    address: self.provider.address_of(*contact).clone(),
                    internal: Some(*contact),
                };
                self.provider.add_contact(u.account, entry);
            }
            // A few external contacts too.
            let n_ext = rng.below(4);
            for j in 0..n_ext {
                let addr = self.domains.random_external_address(
                    rng,
                    (u.account.index() as u64) << 8 | j,
                    0.6,
                    0.1,
                    0.3,
                );
                self.provider
                    .add_contact(u.account, ContactEntry { address: addr, internal: None });
            }
        }

        if config.seed_mailboxes {
            for u in &users {
                seed_mailbox(self.provider, u, now, rng);
            }
        }

        Population { users, graph }
    }
}

/// SMS gateway reliability per country (§6.3: failures "traced back to
/// the unreliability of SMS gateways in certain countries").
fn sms_gateway_reliability(country: CountryCode) -> f64 {
    match country {
        CountryCode::US | CountryCode::CA | CountryCode::GB | CountryCode::DE
        | CountryCode::FR | CountryCode::AU => 0.97,
        CountryCode::ES | CountryCode::MX | CountryCode::BR | CountryCode::CN => 0.93,
        CountryCode::IN | CountryCode::VN | CountryCode::MY => 0.88,
        _ => 0.82,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        provider: MailProvider,
        credentials: CredentialStore,
        options: RecoveryOptions,
        twofactor: TwoFactorState,
        phones: PhonePlan,
        geo: GeoDb,
        domains: DomainModel,
    }

    impl World {
        fn new() -> Self {
            World {
                provider: MailProvider::new(),
                credentials: CredentialStore::new(),
                options: RecoveryOptions::new(),
                twofactor: TwoFactorState::new(),
                phones: PhonePlan::new(),
                geo: GeoDb::new(),
                domains: DomainModel::standard(),
            }
        }

        fn build(&mut self, config: &PopulationConfig, seed: u64) -> Population {
            let mut rng = SimRng::from_seed(seed);
            PopulationBuilder {
                provider: &mut self.provider,
                credentials: &mut self.credentials,
                options: &mut self.options,
                twofactor: &mut self.twofactor,
                phones: &mut self.phones,
                geo: &self.geo,
                domains: &self.domains,
            }
            .build(config, SimTime::from_secs(400 * mhw_types::DAY), &mut rng)
        }
    }

    #[test]
    fn builds_requested_users_with_accounts() {
        let mut w = World::new();
        let config = PopulationConfig { n_users: 300, ..Default::default() };
        let pop = w.build(&config, 1);
        assert_eq!(pop.len(), 300);
        assert_eq!(w.provider.account_count(), 300);
        // Account ids are dense and addresses resolve.
        for u in &pop.users {
            assert_eq!(w.provider.resolve(&u.address), Some(u.account));
            assert!(w.credentials.verify(
                u.account,
                w.credentials.password_for_capture(u.account).to_string().as_str()
            ));
        }
    }

    #[test]
    fn recovery_coverage_tracks_config() {
        let mut w = World::new();
        let config = PopulationConfig { n_users: 2000, seed_mailboxes: false, ..Default::default() };
        let pop = w.build(&config, 2);
        let with_phone = pop
            .users
            .iter()
            .filter(|u| w.options.get(u.account).phone.is_some())
            .count() as f64
            / 2000.0;
        let with_email = pop
            .users
            .iter()
            .filter(|u| w.options.get(u.account).email.is_some())
            .count() as f64
            / 2000.0;
        assert!((with_phone - 0.55).abs() < 0.04, "phone coverage {with_phone}");
        assert!((with_email - 0.70).abs() < 0.04, "email coverage {with_email}");
    }

    #[test]
    fn recycled_email_rate_near_seven_percent() {
        let mut w = World::new();
        let config = PopulationConfig { n_users: 4000, seed_mailboxes: false, ..Default::default() };
        let pop = w.build(&config, 3);
        let (recycled, total) = pop.users.iter().fold((0usize, 0usize), |(r, t), u| {
            match &w.options.get(u.account).email {
                Some(e) => (r + e.recycled as usize, t + 1),
                None => (r, t),
            }
        });
        let rate = recycled as f64 / total as f64;
        assert!((rate - 0.07).abs() < 0.02, "recycled rate {rate}");
    }

    #[test]
    fn contacts_are_mutual_and_in_mailboxes() {
        let mut w = World::new();
        let config = PopulationConfig { n_users: 200, seed_mailboxes: false, ..Default::default() };
        let pop = w.build(&config, 4);
        let u0 = &pop.users[0];
        let internal: Vec<_> = w
            .provider
            .mailbox(u0.account)
            .contacts()
            .iter()
            .filter_map(|c| c.internal)
            .collect();
        assert_eq!(internal.len(), pop.graph.contacts_of(u0.account).len());
        for c in &internal {
            assert!(pop.graph.contacts_of(*c).contains(&u0.account));
        }
    }

    #[test]
    fn mailboxes_seeded_when_enabled() {
        let mut w = World::new();
        let config = PopulationConfig { n_users: 30, ..Default::default() };
        let pop = w.build(&config, 5);
        let nonempty = pop
            .users
            .iter()
            .filter(|u| !w.provider.mailbox(u.account).is_empty())
            .count();
        assert_eq!(nonempty, 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut w1 = World::new();
        let mut w2 = World::new();
        let config = PopulationConfig { n_users: 100, seed_mailboxes: false, ..Default::default() };
        let p1 = w1.build(&config, 42);
        let p2 = w2.build(&config, 42);
        for (a, b) in p1.users.iter().zip(&p2.users) {
            assert_eq!(a.home_ip, b.home_ip);
            assert_eq!(a.country, b.country);
            assert!((a.gullibility - b.gullibility).abs() < 1e-12);
        }
    }

    #[test]
    fn twofactor_enrolment_is_sparse_but_present() {
        let mut w = World::new();
        let config = PopulationConfig { n_users: 3000, seed_mailboxes: false, ..Default::default() };
        let pop = w.build(&config, 6);
        let enrolled = pop
            .users
            .iter()
            .filter(|u| w.twofactor.enabled(u.account))
            .count() as f64
            / 3000.0;
        // 5% of users × 55% phone coverage ≈ 2.75%.
        assert!(enrolled > 0.005 && enrolled < 0.06, "2FA rate {enrolled}");
    }
}
