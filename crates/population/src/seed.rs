//! Mailbox content seeding.
//!
//! A hijacker "searches through the victim's email history for banking
//! details or messages that the victim had previously flagged as
//! important" (§1) — so mailboxes must contain realistic material for
//! those searches to find. Seeded content is language-aware: Spanish
//! speakers hold `transferencia`/`banco` mail, Chinese speakers `账单`,
//! matching the non-English terms in Table 3.

use crate::user::UserProfile;
use mhw_mailsys::{Folder, MailProvider, Message, MessageDraft, MessageKind};
use mhw_simclock::SimRng;
use mhw_types::{EmailAddress, Language, SimDuration, SimTime, DAY};

/// Financial mail subject/body in the user's language. Each tuple is
/// `(subject, body)` and deliberately contains Table 3 finance terms.
fn banking_text(lang: Language, variant: u64) -> (&'static str, &'static str) {
    match lang {
        Language::Spanish => match variant % 3 {
            0 => ("Confirmación de transferencia", "su transferencia al banco fue procesada"),
            1 => ("Estado de cuenta del banco", "adjuntamos su estado de cuenta mensual"),
            _ => ("Recibo de transferencia", "la transferencia bancaria se completó"),
        },
        Language::Chinese => match variant % 2 {
            0 => ("您的账单", "本月账单已生成，请查收"),
            _ => ("银行账单通知", "您的账单明细如下"),
        },
        _ => match variant % 5 {
            0 => ("Wire transfer confirmation", "your wire transfer of $2,400 was completed"),
            1 => ("Bank transfer receipt", "the bank transfer to your savings account posted"),
            2 => ("Monthly bank statement", "your bank statement is attached"),
            3 => ("Investment portfolio update", "your investment account gained 2.1% this quarter"),
            _ => ("Signature needed for wire", "please sign the attached wire transfer form"),
        },
    }
}

/// Linked-account credential mail (Table 3's "Account" column terms).
fn linked_account_text(variant: u64) -> (&'static str, &'static str) {
    match variant % 6 {
        0 => ("Your amazon password was reset", "your new amazon password is enclosed; username unchanged"),
        1 => ("Welcome to dropbox", "your dropbox username and password were created"),
        2 => ("paypal receipt", "you sent a payment; log in to paypal to view"),
        3 => ("Your match profile", "your match username was confirmed"),
        4 => ("ftp account details", "the ftp password for the server is attached"),
        _ => ("skype account confirmation", "your skype username is now active"),
    }
}

/// Personal-media mail with attachments (Table 3's "Content" column).
fn media_attachments(variant: u64) -> Vec<String> {
    match variant % 5 {
        0 => vec!["beach.jpg".into(), "sunset.jpg".into()],
        1 => vec!["family.mov".into()],
        2 => vec!["clip.mp4".into(), "notes.zip".into()],
        3 => vec!["video.3gp".into()],
        _ => vec!["passport.jpg".into()],
    }
}

/// Seed one user's mailbox with `volume`-scaled historical content.
///
/// Content mix (per unit of `mailbox_value`): banking and
/// linked-credential mail for the hijacker to find, personal media,
/// bulk mail, and a starred important message or two. All mail is
/// backdated before `now`.
pub fn seed_mailbox(
    provider: &mut MailProvider,
    user: &UserProfile,
    now: SimTime,
    rng: &mut SimRng,
) {
    let richness = user.mailbox_value;
    let n_banking = (richness * 6.0) as u64 + if rng.chance(richness) { 1 } else { 0 };
    let n_linked = (richness * 3.0) as u64;
    let n_media = (richness * 4.0) as u64 + 1;
    let n_bulk = 6 + rng.below(10);
    let n_personal = 4 + rng.below(8);

    let deliver = |provider: &mut MailProvider,
                       from: EmailAddress,
                       subject: &str,
                       body: &str,
                       kind: MessageKind,
                       attachments: Vec<String>,
                       rng: &mut SimRng| {
        let age = SimDuration::from_secs(rng.below(360 * DAY));
        let at = SimTime::from_secs(now.as_secs().saturating_sub(age.as_secs()));
        let draft = MessageDraft {
            to: vec![user.address.clone()],
            subject: subject.to_string(),
            body: body.to_string(),
            attachments,
            kind,
            reply_to: None,
        };
        provider.deliver_external(user.account, from, &draft, at, |_: &Message| false)
    };

    for i in 0..n_banking {
        let (s, b) = banking_text(user.language, rng.below(100) + i);
        let id = deliver(
            provider,
            EmailAddress::new("alerts", "firstexamplebank.com"),
            s,
            b,
            MessageKind::Banking,
            if rng.chance(0.2) { vec!["statement.pdf".into()] } else { vec![] },
            rng,
        );
        // Users star important financial mail sometimes.
        if rng.chance(0.25) {
            if let Some(m) = provider.mailbox_mut(user.account).get_mut(id) {
                m.starred = true;
            }
        }
    }
    for _ in 0..n_linked {
        let (s, b) = linked_account_text(rng.below(100));
        deliver(
            provider,
            EmailAddress::new("no-reply", "accounts.example.net"),
            s,
            b,
            MessageKind::LinkedCredentials,
            vec![],
            rng,
        );
    }
    for _ in 0..n_media {
        let v = rng.below(100);
        deliver(
            provider,
            EmailAddress::new("friend", "yahoomail.com"),
            "photos from the weekend",
            "sending you the files we talked about",
            MessageKind::PersonalMedia,
            media_attachments(v),
            rng,
        );
    }
    for i in 0..n_bulk {
        deliver(
            provider,
            EmailAddress::new("newsletter", "deals.example.org"),
            &format!("Weekly deals #{i}"),
            "this week's offers inside",
            MessageKind::Bulk,
            vec![],
            rng,
        );
    }
    for i in 0..n_personal {
        deliver(
            provider,
            EmailAddress::new(format!("friend{i}"), "hotmail-like.com"),
            "catching up",
            "how have you been? let's talk soon",
            MessageKind::Personal,
            vec![],
            rng,
        );
    }
    // A couple of drafts the user never sent (hijackers open Drafts).
    let drafts = 1 + rng.below(2);
    for i in 0..drafts {
        let id = deliver(
            provider,
            user.address.clone(),
            &format!("draft note {i}"),
            "unfinished thoughts",
            MessageKind::Personal,
            vec![],
            rng,
        );
        provider.mailbox_mut(user.account).move_to(id, Folder::Drafts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_mailsys::{Actor, SearchQuery};
    use mhw_netmodel::GeoDb;
    use mhw_types::{CountryCode, DeviceId};

    fn user_with(lang_country: CountryCode, value: f64, provider: &mut MailProvider) -> UserProfile {
        let geo = GeoDb::new();
        let account = provider.create_account(EmailAddress::new("seeduser", "homemail.com"));
        UserProfile {
            account,
            address: EmailAddress::new("seeduser", "homemail.com"),
            country: lang_country,
            language: lang_country.language(),
            logins_per_day: 2.0,
            sends_per_day: 2.0,
            searches_per_day: 0.1,
            gullibility: 0.5,
            report_propensity: 0.3,
            travel_propensity: 0.02,
            mailbox_value: value,
            home_ip: geo.stable_ip(lang_country, 0),
            device: DeviceId(0),
        }
    }

    #[test]
    fn rich_english_mailbox_hits_finance_searches() {
        let mut provider = MailProvider::new();
        let user = user_with(CountryCode::US, 0.9, &mut provider);
        let mut rng = SimRng::from_seed(31);
        seed_mailbox(&mut provider, &user, SimTime::from_secs(400 * DAY), &mut rng);
        let hits = provider.search_mailbox(user.account, Actor::Owner, "wire transfer", SimTime::from_secs(400 * DAY));
        assert!(!hits.is_empty(), "wire transfer search must hit");
        let hits2 = provider.search_mailbox(user.account, Actor::Owner, "bank", SimTime::from_secs(400 * DAY));
        assert!(!hits2.is_empty());
    }

    #[test]
    fn spanish_mailbox_contains_transferencia() {
        let mut provider = MailProvider::new();
        let user = user_with(CountryCode::ES, 0.9, &mut provider);
        let mut rng = SimRng::from_seed(32);
        seed_mailbox(&mut provider, &user, SimTime::from_secs(400 * DAY), &mut rng);
        let mb = provider.mailbox(user.account);
        let q = SearchQuery::parse("transferencia");
        let hits = mhw_mailsys::search::search(mb, &q);
        assert!(!hits.is_empty());
    }

    #[test]
    fn chinese_mailbox_contains_zhangdan() {
        let mut provider = MailProvider::new();
        let user = user_with(CountryCode::CN, 0.9, &mut provider);
        let mut rng = SimRng::from_seed(33);
        seed_mailbox(&mut provider, &user, SimTime::from_secs(400 * DAY), &mut rng);
        let mb = provider.mailbox(user.account);
        let hits = mhw_mailsys::search::search(mb, &SearchQuery::parse("账单"));
        assert!(!hits.is_empty());
    }

    #[test]
    fn media_and_operator_searches_hit() {
        let mut provider = MailProvider::new();
        let user = user_with(CountryCode::US, 0.8, &mut provider);
        let mut rng = SimRng::from_seed(34);
        seed_mailbox(&mut provider, &user, SimTime::from_secs(400 * DAY), &mut rng);
        let mb = provider.mailbox(user.account);
        let media = mhw_mailsys::search::search(mb, &SearchQuery::parse("filename:(jpg or jpeg or png)"));
        assert!(!media.is_empty(), "jpg attachments must exist");
    }

    #[test]
    fn starred_and_drafts_views_are_nonempty_for_rich_users() {
        // Across several rich users, Starred and Drafts must be exercised.
        let mut provider = MailProvider::new();
        let geo = GeoDb::new();
        let mut rng = SimRng::from_seed(35);
        let mut any_starred = false;
        let mut any_drafts = false;
        for i in 0..10 {
            let account = provider
                .create_account(EmailAddress::new(format!("u{i}"), "homemail.com"));
            let user = UserProfile {
                account,
                address: EmailAddress::new(format!("u{i}"), "homemail.com"),
                country: CountryCode::US,
                language: Language::English,
                logins_per_day: 2.0,
                sends_per_day: 2.0,
                searches_per_day: 0.1,
                gullibility: 0.5,
                report_propensity: 0.3,
                travel_propensity: 0.02,
                mailbox_value: 0.9,
                home_ip: geo.stable_ip(CountryCode::US, i),
                device: DeviceId(i as u32),
            };
            seed_mailbox(&mut provider, &user, SimTime::from_secs(400 * DAY), &mut rng);
            any_starred |= !provider.mailbox(account).list_folder(Folder::Starred).is_empty();
            any_drafts |= !provider.mailbox(account).list_folder(Folder::Drafts).is_empty();
        }
        assert!(any_starred);
        assert!(any_drafts);
    }

    #[test]
    fn poor_mailboxes_have_little_finance_mail() {
        let mut provider = MailProvider::new();
        let user = user_with(CountryCode::US, 0.0, &mut provider);
        let mut rng = SimRng::from_seed(36);
        seed_mailbox(&mut provider, &user, SimTime::from_secs(400 * DAY), &mut rng);
        let banking = provider
            .mailbox(user.account)
            .all_messages()
            .filter(|m| m.kind == MessageKind::Banking)
            .count();
        assert_eq!(banking, 0);
        // But the mailbox is not empty (bulk/personal mail exists).
        assert!(provider.mailbox(user.account).len() > 5);
    }
}
