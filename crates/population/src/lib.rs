//! # mhw-population
//!
//! The synthetic user population: who the victims (and non-victims) are.
//!
//! * [`UserProfile`] — per-user behavioural rates (logins, sends,
//!   searches per day), gullibility, spam-report propensity, travel, and
//!   network identity (home IP, device);
//! * [`ContactGraph`] — a clustered small-world contact graph over
//!   internal accounts plus external addresses. The graph is what makes
//!   the §5.3 contact-exploitation experiment meaningful: crews phish
//!   the contacts of their victims, so hijacking risk concentrates in
//!   graph neighbourhoods (the paper measured 36× over baseline);
//! * [`seed`] — mailbox content generation. Seeded mail deliberately
//!   contains the material hijackers hunt for (wire-transfer mail, bank
//!   statements — in the user's language, including `账单` and
//!   `transferencia` — linked-account credentials, media attachments),
//!   so the Table 3 search terms actually *hit* during profiling;
//! * [`PopulationBuilder`] — wires users into the mail provider,
//!   credential store, recovery options and 2FA state, with
//!   recovery-option coverage calibrated to §6.3.

pub mod builder;
pub mod graph;
pub mod seed;
pub mod user;

pub use builder::{Population, PopulationBuilder, PopulationConfig};
pub use graph::ContactGraph;
pub use user::UserProfile;
