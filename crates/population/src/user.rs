//! Per-user behavioural profiles.

use mhw_simclock::SimRng;
use mhw_types::{AccountId, CountryCode, DeviceId, EmailAddress, IpAddr, Language};

/// A user of the simulated provider.
#[derive(Debug, Clone)]
pub struct UserProfile {
    pub account: AccountId,
    pub address: EmailAddress,
    pub country: CountryCode,
    pub language: Language,
    /// Mean logins per day (log-normally distributed across users).
    pub logins_per_day: f64,
    /// Mean messages sent per day.
    pub sends_per_day: f64,
    /// Mean own-mailbox searches per day.
    pub searches_per_day: f64,
    /// Propensity to fall for a phishing lure, 0..1. Multiplies page
    /// conversion probability.
    pub gullibility: f64,
    /// Probability of reporting an abusive message after recognizing it.
    pub report_propensity: f64,
    /// Probability of being abroad on any given day (risk-engine FP
    /// source: travel makes legitimate logins look anomalous).
    pub travel_propensity: f64,
    /// Latent mailbox richness 0..1: drives content seeding and the
    /// hijacker's value assessment.
    pub mailbox_value: f64,
    /// Usual login origin.
    pub home_ip: IpAddr,
    /// Usual browser/device identity.
    pub device: DeviceId,
}

impl UserProfile {
    /// Whether this account is active under the paper's definition
    /// ("accessed within the past 30 days"): with `logins_per_day`
    /// Poisson logins, the probability of ≥1 login in 30 days is
    /// effectively 1 for our rate floor, so all generated users count
    /// as active. Kept as a method so alternative populations (dormant
    /// accounts) can override behaviour at one place.
    pub fn is_active(&self) -> bool {
        self.logins_per_day > 0.0
    }

    /// Draw today's login origin: usually home, sometimes travel.
    /// Returns `(ip, is_travelling)`.
    pub fn login_origin(
        &self,
        geo: &mhw_netmodel::GeoDb,
        rng: &mut SimRng,
        travelling_today: bool,
    ) -> (IpAddr, bool) {
        if travelling_today {
            // Abroad: a random other country (conferences, vacations).
            let mut country = self.country;
            for _ in 0..8 {
                let pick = CountryCode::ALL[rng.below(CountryCode::ALL.len() as u64) as usize];
                if pick != self.country {
                    country = pick;
                    break;
                }
            }
            (geo.random_ip(country, rng), true)
        } else {
            (self.home_ip, false)
        }
    }
}

/// Sample heavy-tailed per-day activity rates for a new user.
pub fn sample_activity(rng: &mut SimRng) -> (f64, f64, f64) {
    // Median ≈ 1.6 logins/day, 2.2 sends/day, 0.2 searches/day.
    let logins = rng.lognormal(0.5, 0.6).clamp(0.2, 12.0);
    let sends = rng.lognormal(0.8, 0.8).clamp(0.1, 30.0);
    let searches = rng.lognormal(-1.6, 0.9).clamp(0.01, 4.0);
    (logins, sends, searches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_netmodel::GeoDb;

    fn user(country: CountryCode, geo: &GeoDb) -> UserProfile {
        UserProfile {
            account: AccountId(0),
            address: EmailAddress::new("u0", "homemail.com"),
            country,
            language: country.language(),
            logins_per_day: 2.0,
            sends_per_day: 3.0,
            searches_per_day: 0.2,
            gullibility: 0.5,
            report_propensity: 0.3,
            travel_propensity: 0.02,
            mailbox_value: 0.7,
            home_ip: geo.stable_ip(country, 0),
            device: DeviceId(0),
        }
    }

    #[test]
    fn home_origin_is_stable() {
        let geo = GeoDb::new();
        let u = user(CountryCode::US, &geo);
        let mut rng = SimRng::from_seed(1);
        let (ip, travelling) = u.login_origin(&geo, &mut rng, false);
        assert_eq!(ip, u.home_ip);
        assert!(!travelling);
        assert_eq!(geo.locate(ip), Some(CountryCode::US));
    }

    #[test]
    fn travel_origin_is_abroad() {
        let geo = GeoDb::new();
        let u = user(CountryCode::US, &geo);
        let mut rng = SimRng::from_seed(2);
        let (ip, travelling) = u.login_origin(&geo, &mut rng, true);
        assert!(travelling);
        let c = geo.locate(ip).unwrap();
        assert_ne!(c, CountryCode::US);
    }

    #[test]
    fn activity_rates_are_plausible() {
        let mut rng = SimRng::from_seed(3);
        let n = 5000;
        let mut sum_logins = 0.0;
        for _ in 0..n {
            let (l, s, q) = sample_activity(&mut rng);
            assert!((0.2..=12.0).contains(&l));
            assert!((0.1..=30.0).contains(&s));
            assert!((0.01..=4.0).contains(&q));
            sum_logins += l;
        }
        let mean = sum_logins / n as f64;
        assert!((1.0..4.0).contains(&mean), "mean logins/day {mean}");
    }

    #[test]
    fn generated_users_are_active() {
        let geo = GeoDb::new();
        assert!(user(CountryCode::FR, &geo).is_active());
    }
}
