//! Recovery verification methods and their failure modes (§6.3).

use mhw_identity::options::AccountOptions;
use serde::{Deserialize, Serialize};

/// The verification channel used for one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryMethod {
    /// SMS code to the registered phone — "the most reliable recovery
    /// option" (80.91% in Figure 10).
    Sms,
    /// Link to the secondary email — "our most popular account recovery
    /// option" (74.57%).
    Email,
    /// Secret questions / knowledge tests / manual review (14.20%).
    Fallback,
}

impl RecoveryMethod {
    /// Every channel, in Figure 10 order (SMS, email, fallback).
    pub const ALL: [RecoveryMethod; 3] =
        [RecoveryMethod::Sms, RecoveryMethod::Email, RecoveryMethod::Fallback];

    /// Human-readable channel name used in figures and reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMethod::Sms => "SMS",
            RecoveryMethod::Email => "Email",
            RecoveryMethod::Fallback => "Fallback",
        }
    }
}

/// Probability that the *rightful owner* completes verification over
/// `method`, given the account's recovery options.
///
/// Failure sources follow §6.3 exactly:
/// * SMS — stale numbers, per-country gateway unreliability, "confused
///   users who did not really mean to use this option";
/// * Email — mistyped addresses (the ≈5% bounce source), lost access to
///   the secondary mailbox; recycled addresses are the *caller's*
///   responsibility to exclude (the provider refuses to offer them);
/// * Fallback — poor secret-question recall scaled by the provider's
///   strictness, or low-yield manual review when no question exists.
pub fn method_success_probability(method: RecoveryMethod, options: &AccountOptions) -> f64 {
    match method {
        RecoveryMethod::Sms => match &options.phone {
            None => 0.0,
            Some(p) => {
                let staleness = if p.up_to_date { 1.0 } else { 0.0 };
                let confusion = 0.93; // mistaken picks + typo'd codes
                staleness * p.gateway_reliability * confusion
            }
        },
        RecoveryMethod::Email => match &options.email {
            None => 0.0,
            Some(e) => {
                if e.recycled {
                    // Should have been filtered out; treat as a hard 0 so
                    // a policy bug can never hand an account to whoever
                    // re-registered the address.
                    return 0.0;
                }
                let bounce = if e.mistyped { 0.0 } else { 1.0 };
                // Users lose access to old secondary mailboxes; verified
                // addresses are fresher.
                let access = if e.verified { 0.84 } else { 0.74 };
                bounce * access
            }
        },
        RecoveryMethod::Fallback => match &options.question {
            Some(q) => q.owner_recall * 0.25, // strict grading + friction
            None => 0.10,                     // manual review
        },
    }
}

/// The method the provider offers for a claim: SMS and email when
/// available (recycled email is never offered, §6.3), with user
/// preference between them; fallback otherwise. Methods in `exclude`
/// (already failed on earlier attempts for this incident) are skipped —
/// users switch channels rather than re-failing the same one.
///
/// `prefers_email` models that email "is our most popular account
/// recovery option" even among phone holders.
pub fn select_method(
    options: &AccountOptions,
    prefers_email: bool,
    exclude: &[RecoveryMethod],
) -> RecoveryMethod {
    let email_ok = options.email.as_ref().map(|e| !e.recycled).unwrap_or(false)
        && !exclude.contains(&RecoveryMethod::Email);
    let phone_ok = options.phone.is_some() && !exclude.contains(&RecoveryMethod::Sms);
    match (phone_ok, email_ok) {
        (true, true) => {
            if prefers_email {
                RecoveryMethod::Email
            } else {
                RecoveryMethod::Sms
            }
        }
        (true, false) => RecoveryMethod::Sms,
        (false, true) => RecoveryMethod::Email,
        (false, false) => RecoveryMethod::Fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_identity::{RecoveryEmail, RecoveryOptions, RecoveryPhone, SecretQuestion};
    use mhw_types::{AccountId, CountryCode, EmailAddress, PhoneNumber};

    fn options(
        phone: Option<(bool, f64)>,
        email: Option<(bool, bool, bool)>, // (verified, mistyped, recycled)
        question: Option<f64>,
    ) -> RecoveryOptions {
        let mut o = RecoveryOptions::new();
        o.register(AccountId(0));
        o.init(
            AccountId(0),
            phone.map(|(up, rel)| RecoveryPhone {
                number: PhoneNumber::new(CountryCode::US, 55500001),
                up_to_date: up,
                gateway_reliability: rel,
            }),
            email.map(|(v, m, r)| RecoveryEmail {
                address: EmailAddress::new("me", "backup.net"),
                verified: v,
                mistyped: m,
                recycled: r,
            }),
            question.map(|recall| SecretQuestion { owner_recall: recall, guessability: 0.2 }),
        );
        o
    }

    #[test]
    fn sms_success_near_paper_value() {
        let o = options(Some((true, 0.95)), None, None);
        let p = method_success_probability(RecoveryMethod::Sms, o.get(AccountId(0)));
        assert!((p - 0.8835).abs() < 0.01, "{p}");
        // Stale phone: zero.
        let stale = options(Some((false, 0.95)), None, None);
        assert_eq!(
            method_success_probability(RecoveryMethod::Sms, stale.get(AccountId(0))),
            0.0
        );
    }

    #[test]
    fn email_failure_modes() {
        let good = options(None, Some((true, false, false)), None);
        let p = method_success_probability(RecoveryMethod::Email, good.get(AccountId(0)));
        assert!((p - 0.84).abs() < 1e-9);
        let mistyped = options(None, Some((true, true, false)), None);
        assert_eq!(
            method_success_probability(RecoveryMethod::Email, mistyped.get(AccountId(0))),
            0.0
        );
        let recycled = options(None, Some((true, false, true)), None);
        assert_eq!(
            method_success_probability(RecoveryMethod::Email, recycled.get(AccountId(0))),
            0.0,
            "recycled email must never verify"
        );
    }

    #[test]
    fn fallback_is_weak() {
        let with_q = options(None, None, Some(0.6));
        let p = method_success_probability(RecoveryMethod::Fallback, with_q.get(AccountId(0)));
        assert!((p - 0.15).abs() < 1e-9);
        let without = options(None, None, None);
        let p2 = method_success_probability(RecoveryMethod::Fallback, without.get(AccountId(0)));
        assert!((p2 - 0.10).abs() < 1e-9);
        // Far below the other channels, as Figure 10 shows.
        assert!(p < 0.3 && p2 < 0.3);
    }

    #[test]
    fn selection_prefers_available_channels() {
        let both = options(Some((true, 0.95)), Some((true, false, false)), None);
        assert_eq!(select_method(both.get(AccountId(0)), true, &[]), RecoveryMethod::Email);
        assert_eq!(select_method(both.get(AccountId(0)), false, &[]), RecoveryMethod::Sms);
        let phone_only = options(Some((true, 0.95)), None, None);
        assert_eq!(select_method(phone_only.get(AccountId(0)), true, &[]), RecoveryMethod::Sms);
        let recycled = options(None, Some((true, false, true)), Some(0.5));
        assert_eq!(
            select_method(recycled.get(AccountId(0)), true, &[]),
            RecoveryMethod::Fallback,
            "recycled email is never offered"
        );
        let nothing = options(None, None, None);
        assert_eq!(select_method(nothing.get(AccountId(0)), true, &[]), RecoveryMethod::Fallback);
    }

    #[test]
    fn exclusions_walk_down_the_chain() {
        let both = options(Some((true, 0.95)), Some((true, false, false)), None);
        let o = both.get(AccountId(0));
        assert_eq!(select_method(o, false, &[RecoveryMethod::Sms]), RecoveryMethod::Email);
        assert_eq!(
            select_method(o, true, &[RecoveryMethod::Email]),
            RecoveryMethod::Sms
        );
        assert_eq!(
            select_method(o, true, &[RecoveryMethod::Sms, RecoveryMethod::Email]),
            RecoveryMethod::Fallback
        );
    }
}
