//! Risk-scored recovery claims.
//!
//! The paper (§6) treats account recovery as the trusted path back into
//! a hijacked account, but follow-up work on risk-based authentication
//! (Büttner et al., PAPERS.md) shows the "forgot password" flow is the
//! soft underbelly: attackers who fail a login challenge pivot to a
//! recovery claim armed with harvested personal data. This module closes
//! that gap by scoring every claim with the *same* signal machinery the
//! login path uses ([`mhw_defense::signals`]) plus three claim-specific
//! signals:
//!
//! * **method strength** — accounts whose strongest recovery channel is
//!   weak (stale phone, mistyped or recycled secondary email) will ride
//!   a weak verification method, which attackers prefer;
//! * **secondary-channel reachability** — whether the provider can reach
//!   the claimant out of band at all to confirm the claim;
//! * **knowledge-based-answer plausibility** — how guessable the
//!   account's secret question is to a researching hijacker (§6.3 calls
//!   secret questions "insecure and unreliable").
//!
//! The combination is the same noisy-OR shape as the login
//! [`RiskEngine`](mhw_defense::RiskEngine): risk accumulates, and a
//! configurable [`RecoveryPosture`] maps the score to an
//! allow / step-up / deny [`RecoveryVerdict`].
//!
//! Scoring is a pure function of the claim context — it draws no
//! randomness and mutates no state — so a scored world stays
//! byte-for-byte reproducible and the same claim context always earns
//! the same verdict.

use mhw_defense::signals::{extract_signals, AccountHistory, LoginSignals};
use mhw_identity::options::AccountOptions;
use mhw_types::{CountryCode, DeviceId, SimTime};
use serde::{Deserialize, Serialize};

/// The verdict a scored claim receives before any channel verification
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryVerdict {
    /// Proceed straight to channel verification.
    Allow,
    /// Proceed, but demand an extra verification factor first (an SMS
    /// code to the registered number, a second knowledge check). Owners
    /// usually pass; hijackers usually do not.
    StepUp,
    /// Refuse the claim outright: the context looks like a takeover
    /// attempt. For a rightful owner this is a *lockout*.
    Deny,
}

impl RecoveryVerdict {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryVerdict::Allow => "allow",
            RecoveryVerdict::StepUp => "step-up",
            RecoveryVerdict::Deny => "deny",
        }
    }
}

/// Score thresholds mapping claim risk to a [`RecoveryVerdict`], plus
/// how hard the step-up challenge is for the rightful owner.
///
/// Postures trade attack success against legitimate lockouts — the
/// frontier the `sweep` binary measures. [`RecoveryPosture::paper`] is
/// the default; [`RecoveryPosture::lenient`] barely intervenes and
/// [`RecoveryPosture::strict`] buys attack resistance with owner
/// friction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPosture {
    /// Scores at or above this earn [`RecoveryVerdict::StepUp`].
    pub step_up: f64,
    /// Scores at or above this earn [`RecoveryVerdict::Deny`].
    pub deny: f64,
    /// Probability the rightful owner completes the step-up challenge
    /// (§8.2: challenges are "easy to pass for our users").
    pub step_up_pass: f64,
}

impl Default for RecoveryPosture {
    fn default() -> Self {
        RecoveryPosture::paper()
    }
}

impl RecoveryPosture {
    /// The balanced posture calibrated to the paper's era: step up on
    /// clearly novel context, deny only near-certain takeovers.
    pub fn paper() -> Self {
        RecoveryPosture { step_up: 0.45, deny: 0.90, step_up_pass: 0.85 }
    }

    /// Minimal intervention: almost every claim proceeds unchallenged.
    pub fn lenient() -> Self {
        RecoveryPosture { step_up: 0.65, deny: 0.97, step_up_pass: 0.90 }
    }

    /// Aggressive posture: challenge early, deny moderate-risk claims,
    /// and grade the step-up harder — more lockouts, fewer takeovers.
    pub fn strict() -> Self {
        RecoveryPosture { step_up: 0.25, deny: 0.75, step_up_pass: 0.75 }
    }

    /// Map a risk score to a verdict.
    pub fn decide(&self, score: f64) -> RecoveryVerdict {
        if score >= self.deny {
            RecoveryVerdict::Deny
        } else if score >= self.step_up {
            RecoveryVerdict::StepUp
        } else {
            RecoveryVerdict::Allow
        }
    }
}

/// The normalized signal vector for one recovery claim: the six login
/// signals evaluated on the claim context, plus the three claim-specific
/// signals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClaimSignals {
    /// The login-path signals (country/device novelty, geo-velocity,
    /// fan-out, odd hours, failure bursts) evaluated against the
    /// account's login history at filing time.
    pub login: LoginSignals,
    /// 1 − strength of the account's strongest recovery channel: 0 for
    /// a fresh phone or verified secondary email, 1 when only the
    /// fallback (secret question / manual review) is available.
    pub weak_channel: f64,
    /// Whether the provider can reach the claimant out of band: 0 with
    /// two healthy channels, 0.5 with one, 1 with none.
    pub unreachable: f64,
    /// Guessability of the account's secret question to a researching
    /// hijacker, discounted when a strong channel would be used instead.
    pub kba_guessable: f64,
}

/// The outcome of scoring one claim: the noisy-OR risk score, the
/// posture's verdict, and the posture's owner pass rate for a step-up
/// (carried along so claim processing needs no posture reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimAssessment {
    /// Noisy-OR combined risk in `[0, 1)`.
    pub score: f64,
    /// The posture's decision for this score.
    pub verdict: RecoveryVerdict,
    /// [`RecoveryPosture::step_up_pass`] at assessment time.
    pub step_up_pass: f64,
}

/// Signal weights for the recovery noisy-OR. Order matches
/// [`LoginSignals::as_array`], followed by the three claim signals.
const RECOVERY_WEIGHTS: [f64; 9] = [
    0.55, // new_country
    0.70, // impossible_travel
    0.35, // new_device
    0.80, // ip_fanout
    0.10, // odd_hour
    0.30, // failure_burst
    0.30, // weak_channel
    0.25, // unreachable
    0.45, // kba_guessable
];

/// Strength of the account's strongest recovery channel, 0..1.
fn channel_strength(options: &AccountOptions) -> f64 {
    let sms = options
        .phone
        .as_ref()
        .map(|p| if p.up_to_date { 0.95 * p.gateway_reliability } else { 0.25 })
        .unwrap_or(0.0);
    let email = options
        .email
        .as_ref()
        .map(|e| match (e.recycled || e.mistyped, e.verified) {
            (true, _) => 0.10,
            (false, true) => 0.85,
            (false, false) => 0.60,
        })
        .unwrap_or(0.0);
    sms.max(email)
}

/// Whether a channel counts as reachable for out-of-band confirmation.
fn reachable_channels(options: &AccountOptions) -> usize {
    let phone_ok = options.phone.as_ref().map(|p| p.up_to_date).unwrap_or(false);
    let email_ok = options
        .email
        .as_ref()
        .map(|e| e.verified && !e.mistyped && !e.recycled)
        .unwrap_or(false);
    usize::from(phone_ok) + usize::from(email_ok)
}

/// Probability a hijacker armed with researched personal data completes
/// a recovery takeover once allowed to attempt verification, as a
/// noisy-OR over the account's weak spots: a guessable secret question,
/// a recycled (re-registerable) secondary email, and social-engineering
/// the manual review. `research_quality` is how much harvested data the
/// crew brings (0..1).
pub fn hijacker_takeover_probability(options: &AccountOptions, research_quality: f64) -> f64 {
    let q = research_quality.clamp(0.0, 1.0);
    let mut fail = 1.0;
    if let Some(sq) = &options.question {
        fail *= 1.0 - (0.9 * q * sq.guessability).clamp(0.0, 1.0);
    }
    if let Some(e) = &options.email {
        if e.recycled {
            // §6.3's recycling problem, from the attacker's side: the
            // address can be re-registered and the link received.
            fail *= 1.0 - 0.45;
        }
    }
    // Manual review social-engineered with harvested personal data.
    fail *= 1.0 - (0.05 + 0.15 * q);
    1.0 - fail
}

/// Scores recovery claims against a [`RecoveryPosture`].
///
/// Stateless besides the posture: signal extraction borrows the login
/// [`AccountHistory`] and the account's recovery options, so the service
/// can be constructed per claim for free.
///
/// ```
/// use mhw_recovery::risk::{RecoveryPosture, RecoveryRiskService, RecoveryVerdict};
/// use mhw_defense::signals::AccountHistory;
/// use mhw_identity::{RecoveryOptions, RecoveryPhone};
/// use mhw_types::{AccountId, CountryCode, DeviceId, PhoneNumber, SimTime, DAY, HOUR};
///
/// // An account with a month of home logins from one US device.
/// let mut history = AccountHistory::default();
/// for day in 0..30u64 {
///     history.record_success(
///         SimTime::from_secs(day * DAY + 9 * HOUR),
///         CountryCode::US,
///         DeviceId(1),
///     );
/// }
/// // …and an up-to-date recovery phone on file.
/// let mut store = RecoveryOptions::new();
/// store.register(AccountId(0));
/// store.init(
///     AccountId(0),
///     Some(RecoveryPhone {
///         number: PhoneNumber::new(CountryCode::US, 55510001),
///         up_to_date: true,
///         gateway_reliability: 0.95,
///     }),
///     None,
///     None,
/// );
/// let options = store.get(AccountId(0));
/// let service = RecoveryRiskService::new(RecoveryPosture::paper());
/// let at = SimTime::from_secs(30 * DAY + 10 * HOUR);
///
/// // The owner claiming from their usual device sails through…
/// let owner = service.extract(&history, at, Some(CountryCode::US), DeviceId(1), 1, options);
/// assert_eq!(service.assess(&owner).verdict, RecoveryVerdict::Allow);
///
/// // …while a foreign claim from unknown tooling is stopped.
/// let crew = service.extract(&history, at, Some(CountryCode::NG), DeviceId(999), 1, options);
/// let assessment = service.assess(&crew);
/// assert!(assessment.score > service.assess(&owner).score);
/// assert_ne!(assessment.verdict, RecoveryVerdict::Allow);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryRiskService {
    /// The thresholds this service decides with.
    pub posture: RecoveryPosture,
}

impl Default for RecoveryRiskService {
    fn default() -> Self {
        RecoveryRiskService::new(RecoveryPosture::default())
    }
}

impl RecoveryRiskService {
    /// A service deciding with `posture`.
    pub fn new(posture: RecoveryPosture) -> Self {
        RecoveryRiskService { posture }
    }

    /// Extract the claim signal vector: the six login signals evaluated
    /// on the claim's context (where and from what device the claim is
    /// filed), plus the channel-health signals from the account's
    /// recovery options. `fanout_today` mirrors the login signal's
    /// contract (distinct accounts seen from the claimant's IP today,
    /// including this claim).
    pub fn extract(
        &self,
        history: &AccountHistory,
        at: SimTime,
        country: Option<CountryCode>,
        device: DeviceId,
        fanout_today: usize,
        options: &AccountOptions,
    ) -> ClaimSignals {
        let login = extract_signals(history, at, country, device, fanout_today);
        let strength = channel_strength(options);
        let weak_channel = 1.0 - strength;
        let unreachable = match reachable_channels(options) {
            0 => 1.0,
            1 => 0.5,
            _ => 0.0,
        };
        // A guessable question matters fully when the fallback is the
        // likely channel, and residually otherwise (the attacker can
        // steer a claim toward the knowledge test).
        let kba_guessable = options
            .question
            .as_ref()
            .map(|q| if strength < 0.5 { q.guessability } else { q.guessability * 0.25 })
            .unwrap_or(0.0);
        ClaimSignals { login, weak_channel, unreachable, kba_guessable }
    }

    /// Noisy-OR combination of the nine signals: risk accumulates, and
    /// no single weak signal can reach a deny on its own.
    pub fn score(&self, signals: &ClaimSignals) -> f64 {
        let l = signals.login.as_array();
        let all = [
            l[0],
            l[1],
            l[2],
            l[3],
            l[4],
            l[5],
            signals.weak_channel,
            signals.unreachable,
            signals.kba_guessable,
        ];
        let mut clean = 1.0;
        for (s, w) in all.iter().zip(RECOVERY_WEIGHTS) {
            clean *= 1.0 - (w * s).clamp(0.0, 1.0);
        }
        1.0 - clean
    }

    /// Score and decide in one step.
    pub fn assess(&self, signals: &ClaimSignals) -> ClaimAssessment {
        let score = self.score(signals);
        ClaimAssessment {
            score,
            verdict: self.posture.decide(score),
            step_up_pass: self.posture.step_up_pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_identity::{RecoveryEmail, RecoveryPhone, SecretQuestion};
    use mhw_types::{EmailAddress, PhoneNumber, DAY, HOUR};

    fn seasoned_history() -> AccountHistory {
        let mut h = AccountHistory::default();
        for d in 0..30u64 {
            h.record_success(SimTime::from_secs(d * DAY + 9 * HOUR), CountryCode::US, DeviceId(1));
        }
        h
    }

    fn build_options(
        phone: Option<RecoveryPhone>,
        email: Option<RecoveryEmail>,
        question: Option<SecretQuestion>,
    ) -> AccountOptions {
        let mut o = mhw_identity::RecoveryOptions::new();
        o.register(mhw_types::AccountId(0));
        o.init(mhw_types::AccountId(0), phone, email, question);
        o.get(mhw_types::AccountId(0)).clone()
    }

    fn healthy_options() -> AccountOptions {
        build_options(
            Some(RecoveryPhone {
                number: PhoneNumber::new(CountryCode::US, 55510001),
                up_to_date: true,
                gateway_reliability: 0.95,
            }),
            Some(RecoveryEmail {
                address: EmailAddress::new("me", "backup.net"),
                verified: true,
                mistyped: false,
                recycled: false,
            }),
            None,
        )
    }

    fn weak_options() -> AccountOptions {
        build_options(None, None, Some(SecretQuestion { owner_recall: 0.6, guessability: 0.5 }))
    }

    #[test]
    fn owner_claim_from_home_is_allowed_under_every_posture() {
        let h = seasoned_history();
        let at = SimTime::from_secs(30 * DAY + 10 * HOUR);
        for posture in [RecoveryPosture::lenient(), RecoveryPosture::paper(), RecoveryPosture::strict()] {
            let svc = RecoveryRiskService::new(posture);
            let s = svc.extract(&h, at, Some(CountryCode::US), DeviceId(1), 1, &healthy_options());
            assert_eq!(svc.assess(&s).verdict, RecoveryVerdict::Allow, "{posture:?}");
        }
    }

    #[test]
    fn crew_context_scores_above_owner_context() {
        let h = seasoned_history();
        let at = SimTime::from_secs(30 * DAY + 10 * HOUR);
        let svc = RecoveryRiskService::default();
        let owner = svc.extract(&h, at, Some(CountryCode::US), DeviceId(1), 1, &weak_options());
        let crew = svc.extract(&h, at, Some(CountryCode::NG), DeviceId(999), 1, &weak_options());
        assert!(svc.score(&crew) > svc.score(&owner));
        // The weak-channel account raises both, but the crew's novelty
        // signals dominate.
        assert!(svc.score(&crew) > 0.6, "{}", svc.score(&crew));
    }

    #[test]
    fn strict_posture_denies_what_paper_steps_up() {
        let h = seasoned_history();
        let at = SimTime::from_secs(30 * DAY + 10 * HOUR);
        let paper = RecoveryRiskService::new(RecoveryPosture::paper());
        let strict = RecoveryRiskService::new(RecoveryPosture::strict());
        let s = paper.extract(&h, at, Some(CountryCode::NG), DeviceId(999), 1, &weak_options());
        let score = paper.score(&s);
        assert_eq!(strict.score(&s), score, "score is posture-independent");
        // Thresholds are ordered: anything paper denies, strict denies.
        assert!(RecoveryPosture::strict().deny < RecoveryPosture::paper().deny);
        assert!(RecoveryPosture::strict().step_up < RecoveryPosture::paper().step_up);
    }

    #[test]
    fn scoring_is_pure_and_deterministic() {
        let h = seasoned_history();
        let at = SimTime::from_secs(30 * DAY + 10 * HOUR);
        let svc = RecoveryRiskService::default();
        let s1 = svc.extract(&h, at, Some(CountryCode::NG), DeviceId(7), 3, &weak_options());
        let s2 = svc.extract(&h, at, Some(CountryCode::NG), DeviceId(7), 3, &weak_options());
        assert_eq!(s1, s2);
        assert_eq!(svc.assess(&s1), svc.assess(&s2));
    }

    #[test]
    fn takeover_probability_tracks_account_weakness() {
        let healthy = hijacker_takeover_probability(&healthy_options(), 0.8);
        let weak = hijacker_takeover_probability(&weak_options(), 0.8);
        assert!(weak > healthy, "{weak} vs {healthy}");
        // Research quality matters.
        assert!(
            hijacker_takeover_probability(&weak_options(), 0.9)
                > hijacker_takeover_probability(&weak_options(), 0.1)
        );
        // A recycled secondary email is a large attack surface.
        let mut recycled = healthy_options();
        if let Some(e) = &mut recycled.email {
            e.recycled = true;
        }
        assert!(hijacker_takeover_probability(&recycled, 0.5) > 0.45);
        // Bounded.
        for q in [0.0, 0.5, 1.0] {
            let p = hijacker_takeover_probability(&weak_options(), q);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn verdict_thresholds_are_inclusive() {
        let p = RecoveryPosture::paper();
        assert_eq!(p.decide(p.step_up), RecoveryVerdict::StepUp);
        assert_eq!(p.decide(p.deny), RecoveryVerdict::Deny);
        assert_eq!(p.decide(p.step_up - 1e-9), RecoveryVerdict::Allow);
    }
}
