//! Recovery claims.

use crate::methods::RecoveryMethod;
use crate::risk::RecoveryVerdict;
use mhw_types::{AccountId, ClaimId, SimTime};
use serde::{Deserialize, Serialize};

/// What made the claimant start the recovery process (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClaimTrigger {
    /// A proactive notification over an independent channel ("the
    /// fastest recoveries are best explained by the proactive
    /// notifications we send").
    Notification,
    /// The victim noticed by themselves — password dead, strange sent
    /// mail, a contact called them.
    SelfNoticed,
    /// The provider's anti-abuse systems disabled the account "to
    /// prevent further damage".
    AccountDisabled,
    /// Not the victim at all: a hijacker who failed the login challenge
    /// pivoting to "forgot password" with harvested personal data (the
    /// recovery-pivot attack; Büttner et al.). Owner-side measurements
    /// (Figure 9 latency, Figure 10 method rates) exclude these.
    HijackerPivot,
}

/// One account-recovery claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryClaim {
    /// Claim identifier, dense in filing order.
    pub id: ClaimId,
    /// The account being claimed.
    pub account: AccountId,
    /// When the hijack actually began (ground truth; used for latency
    /// measurement, not by the claim processor).
    pub hijacked_at: SimTime,
    /// When the provider's risk systems flagged the account (the paper
    /// measures recovery latency from this instant).
    pub flagged_at: SimTime,
    /// What started the recovery process.
    pub trigger: ClaimTrigger,
    /// When the claim entered the pipeline.
    pub filed_at: SimTime,
    /// The verification channel the claim rode, once selected.
    pub method: Option<RecoveryMethod>,
    /// Whether verification succeeded (and the password was reset).
    pub succeeded: bool,
    /// When the claim resolved either way.
    pub resolved_at: Option<SimTime>,
    /// Noisy-OR risk score assigned by the
    /// [`RecoveryRiskService`](crate::risk::RecoveryRiskService), when
    /// claim risk scoring was enabled for the run.
    pub risk_score: Option<f64>,
    /// The risk verdict the claim received before verification, when
    /// claim risk scoring was enabled for the run.
    pub verdict: Option<RecoveryVerdict>,
}

impl RecoveryClaim {
    /// End-to-end latency as Figure 9 defines it: from risk-flagging to
    /// the owner regaining exclusive control. Hijacker-pivot claims are
    /// not owner recoveries and report `None`.
    pub fn latency(&self) -> Option<mhw_types::SimDuration> {
        self.resolved_at
            .filter(|_| self.succeeded && self.trigger != ClaimTrigger::HijackerPivot)
            .map(|r| r.since(self.flagged_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::SimDuration;

    fn claim() -> RecoveryClaim {
        RecoveryClaim {
            id: ClaimId(0),
            account: AccountId(0),
            hijacked_at: SimTime::from_secs(100),
            flagged_at: SimTime::from_secs(200),
            trigger: ClaimTrigger::Notification,
            filed_at: SimTime::from_secs(300),
            method: Some(RecoveryMethod::Sms),
            succeeded: true,
            resolved_at: Some(SimTime::from_secs(500)),
            risk_score: None,
            verdict: None,
        }
    }

    #[test]
    fn latency_only_for_successful_claims() {
        let mut c = claim();
        assert_eq!(c.latency(), Some(SimDuration::from_secs(300)));
        c.succeeded = false;
        assert_eq!(c.latency(), None);
        c.succeeded = true;
        c.resolved_at = None;
        assert_eq!(c.latency(), None);
    }

    #[test]
    fn pivot_claims_never_count_as_owner_recoveries() {
        let mut c = claim();
        c.trigger = ClaimTrigger::HijackerPivot;
        assert_eq!(c.latency(), None, "a takeover is not a recovery");
    }

    #[test]
    fn scored_claims_round_trip_through_serde() {
        let mut c = claim();
        c.risk_score = Some(0.42);
        c.verdict = Some(RecoveryVerdict::StepUp);
        let json = serde_json::to_string(&c).unwrap();
        let back: RecoveryClaim = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
