//! Recovery claims.

use crate::methods::RecoveryMethod;
use mhw_types::{AccountId, ClaimId, SimTime};
use serde::{Deserialize, Serialize};

/// What made the victim start the recovery process (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClaimTrigger {
    /// A proactive notification over an independent channel ("the
    /// fastest recoveries are best explained by the proactive
    /// notifications we send").
    Notification,
    /// The victim noticed by themselves — password dead, strange sent
    /// mail, a contact called them.
    SelfNoticed,
    /// The provider's anti-abuse systems disabled the account "to
    /// prevent further damage".
    AccountDisabled,
}

/// One account-recovery claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryClaim {
    pub id: ClaimId,
    pub account: AccountId,
    /// When the hijack actually began (ground truth; used for latency
    /// measurement, not by the claim processor).
    pub hijacked_at: SimTime,
    /// When the provider's risk systems flagged the account (the paper
    /// measures recovery latency from this instant).
    pub flagged_at: SimTime,
    pub trigger: ClaimTrigger,
    pub filed_at: SimTime,
    pub method: Option<RecoveryMethod>,
    pub succeeded: bool,
    pub resolved_at: Option<SimTime>,
}

impl RecoveryClaim {
    /// End-to-end latency as Figure 9 defines it: from risk-flagging to
    /// the owner regaining exclusive control.
    pub fn latency(&self) -> Option<mhw_types::SimDuration> {
        self.resolved_at
            .filter(|_| self.succeeded)
            .map(|r| r.since(self.flagged_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_types::SimDuration;

    #[test]
    fn latency_only_for_successful_claims() {
        let mut c = RecoveryClaim {
            id: ClaimId(0),
            account: AccountId(0),
            hijacked_at: SimTime::from_secs(100),
            flagged_at: SimTime::from_secs(200),
            trigger: ClaimTrigger::Notification,
            filed_at: SimTime::from_secs(300),
            method: Some(RecoveryMethod::Sms),
            succeeded: true,
            resolved_at: Some(SimTime::from_secs(500)),
        };
        assert_eq!(c.latency(), Some(SimDuration::from_secs(300)));
        c.succeeded = false;
        assert_eq!(c.latency(), None);
        c.succeeded = true;
        c.resolved_at = None;
        assert_eq!(c.latency(), None);
    }
}
