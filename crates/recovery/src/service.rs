//! Claim processing.
//!
//! The recovery part of the §6.1 workflow: verify ownership over the
//! best available channel, and on success force a password reset so the
//! hijacker's credentials stop working. Cleanup (remission) is a
//! separate, optional step (§6.4: users preferred "content recovery an
//! optional last step rather than having a fully automated process").

use crate::claim::{ClaimTrigger, RecoveryClaim};
use crate::methods::{method_success_probability, select_method, RecoveryMethod};
use mhw_identity::{CredentialStore, RecoveryOptions};
use mhw_obs::{buckets, MetricId, Registry};
use mhw_simclock::SimRng;
use mhw_types::{AccountId, Actor, ClaimId, SimDuration, SimTime};

/// Claims filed with the service.
pub const M_CLAIMS_FILED: MetricId = MetricId("recovery.claims_filed");
/// Claims whose verification succeeded (password reset).
pub const M_CLAIMS_SUCCEEDED: MetricId = MetricId("recovery.claims_succeeded");
/// Claims whose verification failed.
pub const M_CLAIMS_FAILED: MetricId = MetricId("recovery.claims_failed");
/// Flag → resolution latency, simulated seconds (the Figure 9
/// recovery-latency distribution).
pub const M_RESOLUTION_LATENCY_SECS: MetricId = MetricId("recovery.resolution_latency_secs");

/// Outcome of processing one claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimResolution {
    pub claim: RecoveryClaim,
    /// New password set on success (synthetic token).
    pub password_reset: bool,
}

/// The recovery service.
#[derive(Debug, Clone)]
pub struct RecoveryService {
    next_claim: u32,
    claims: Vec<RecoveryClaim>,
    /// Fraction of dual-option users who pick email over SMS (email is
    /// "our most popular account recovery option", §6.3).
    pub email_preference: f64,
    metrics: Registry,
}

impl Default for RecoveryService {
    fn default() -> Self {
        Self::new()
    }
}

impl RecoveryService {
    pub fn new() -> Self {
        RecoveryService {
            next_claim: 0,
            claims: Vec::new(),
            email_preference: 0.60,
            metrics: Registry::new()
                .with_counter(M_CLAIMS_FILED)
                .with_counter(M_CLAIMS_SUCCEEDED)
                .with_counter(M_CLAIMS_FAILED)
                .with_histogram(M_RESOLUTION_LATENCY_SECS, buckets::LATENCY_SECS),
        }
    }

    /// The service's metrics registry (claim counters and the
    /// flag-to-resolution latency distribution).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// All processed claims (the Figure 9/10 dataset).
    pub fn claims(&self) -> &[RecoveryClaim] {
        &self.claims
    }

    /// File and immediately process a claim.
    ///
    /// Verification takes minutes; the dominant latency component is how
    /// long the victim took to *file* (modelled upstream). On success
    /// the password is reset by the system, evicting the hijacker.
    #[allow(clippy::too_many_arguments)]
    pub fn process_claim(
        &mut self,
        account: AccountId,
        hijacked_at: SimTime,
        flagged_at: SimTime,
        trigger: ClaimTrigger,
        filed_at: SimTime,
        options: &RecoveryOptions,
        credentials: &mut CredentialStore,
        exclude: &[RecoveryMethod],
        rng: &mut SimRng,
    ) -> ClaimResolution {
        let id = ClaimId(self.next_claim);
        self.next_claim += 1;
        let opts = options.get(account);
        let method = select_method(opts, rng.chance(self.email_preference), exclude);
        let p = method_success_probability(method, opts);
        let succeeded = rng.chance(p);
        // Verification round-trip: minutes for SMS/email, longer for
        // fallback review.
        let processing = match method {
            RecoveryMethod::Sms => SimDuration::from_mins(3 + rng.below(10)),
            RecoveryMethod::Email => SimDuration::from_mins(5 + rng.below(25)),
            RecoveryMethod::Fallback => SimDuration::from_hours(2 + rng.below(20)),
        };
        let resolved_at = filed_at.plus(processing);
        let mut password_reset = false;
        if succeeded {
            let new_pw = format!("reset-{}-{}", account.index(), rng.below(1_000_000));
            credentials.change_password(account, Actor::System, &new_pw, resolved_at);
            password_reset = true;
        }
        self.metrics.inc(M_CLAIMS_FILED);
        if succeeded {
            self.metrics.inc(M_CLAIMS_SUCCEEDED);
        } else {
            self.metrics.inc(M_CLAIMS_FAILED);
        }
        self.metrics
            .observe(M_RESOLUTION_LATENCY_SECS, resolved_at.since(flagged_at).as_secs());
        let claim = RecoveryClaim {
            id,
            account,
            hijacked_at,
            flagged_at,
            trigger,
            filed_at,
            method: Some(method),
            succeeded,
            resolved_at: Some(resolved_at),
        };
        self.claims.push(claim.clone());
        ClaimResolution { claim, password_reset }
    }

    /// Success rate per method over all processed claims (Figure 10).
    pub fn success_rate_by_method(&self) -> Vec<(RecoveryMethod, f64, usize)> {
        RecoveryMethod::ALL
            .iter()
            .map(|m| {
                let of_method: Vec<_> =
                    self.claims.iter().filter(|c| c.method == Some(*m)).collect();
                let n = of_method.len();
                let ok = of_method.iter().filter(|c| c.succeeded).count();
                (*m, if n == 0 { 0.0 } else { ok as f64 / n as f64 }, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_identity::{RecoveryEmail, RecoveryPhone};
    use mhw_types::{CountryCode, EmailAddress, PhoneNumber};

    struct Fixture {
        options: RecoveryOptions,
        credentials: CredentialStore,
        service: RecoveryService,
        rng: SimRng,
    }

    /// Build `n` accounts with the given option layout.
    fn fixture(n: usize, phone: bool, email: bool) -> Fixture {
        let mut options = RecoveryOptions::new();
        let mut credentials = CredentialStore::new();
        for i in 0..n {
            let a = AccountId::from_index(i);
            options.register(a);
            credentials.register(a, &format!("pw{i}"));
            options.init(
                a,
                phone.then(|| RecoveryPhone {
                    number: PhoneNumber::new(CountryCode::US, 10_000_000 + i as u64),
                    up_to_date: i % 12 != 0, // ~8% stale
                    gateway_reliability: 0.95,
                }),
                email.then(|| RecoveryEmail {
                    address: EmailAddress::new(format!("b{i}"), "backup.net"),
                    verified: true,
                    mistyped: i % 20 == 0, // 5%
                    recycled: i % 14 == 0, // ~7%
                }),
                None,
            );
        }
        Fixture {
            options,
            credentials,
            service: RecoveryService::new(),
            rng: SimRng::from_seed(77),
        }
    }

    fn run_all(f: &mut Fixture, n: usize) {
        for i in 0..n {
            let a = AccountId::from_index(i);
            f.service.process_claim(
                a,
                SimTime::from_secs(1000),
                SimTime::from_secs(1500),
                ClaimTrigger::SelfNoticed,
                SimTime::from_secs(5000),
                &f.options,
                &mut f.credentials,
                &[],
                &mut f.rng,
            );
        }
    }

    #[test]
    fn successful_claims_reset_the_password() {
        let mut f = fixture(50, true, false);
        run_all(&mut f, 50);
        for c in f.service.claims() {
            if c.succeeded {
                assert!(
                    !f.credentials.verify(c.account, &format!("pw{}", c.account.index())),
                    "old password must die on recovery"
                );
                let last = f.credentials.changes(c.account).last().unwrap();
                assert_eq!(last.actor, Actor::System);
            } else {
                assert!(f.credentials.verify(c.account, &format!("pw{}", c.account.index())));
            }
        }
    }

    #[test]
    fn sms_success_rate_matches_figure10_band() {
        let mut f = fixture(4000, true, false);
        run_all(&mut f, 4000);
        let rates = f.service.success_rate_by_method();
        let (_, sms_rate, sms_n) = rates[0];
        assert!(sms_n > 3900);
        // Figure 10: 80.91%. Our decomposition: 92% fresh × 95% gateway ×
        // 95.5% non-confusion ≈ 0.834.
        assert!((sms_rate - 0.81).abs() < 0.05, "SMS rate {sms_rate}");
    }

    #[test]
    fn email_success_rate_matches_figure10_band() {
        let mut f = fixture(4000, false, true);
        run_all(&mut f, 4000);
        let rates = f.service.success_rate_by_method();
        let (_, email_rate, email_n) = rates[1];
        // Recycled addresses fall through to fallback.
        assert!(email_n > 3500);
        assert!((email_rate - 0.745).abs() < 0.06, "email rate {email_rate}");
    }

    #[test]
    fn fallback_success_rate_is_poor() {
        let mut f = fixture(3000, false, false);
        run_all(&mut f, 3000);
        let rates = f.service.success_rate_by_method();
        let (_, rate, n) = rates[2];
        assert_eq!(n, 3000);
        assert!(rate < 0.2, "fallback rate {rate}");
    }

    #[test]
    fn resolution_time_moves_forward() {
        let mut f = fixture(10, true, true);
        run_all(&mut f, 10);
        for c in f.service.claims() {
            assert!(c.resolved_at.unwrap() > c.filed_at);
        }
    }
}
