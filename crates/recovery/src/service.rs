//! Claim processing.
//!
//! The recovery part of the §6.1 workflow: verify ownership over the
//! best available channel, and on success force a password reset so the
//! hijacker's credentials stop working. Cleanup (remission) is a
//! separate, optional step (§6.4: users preferred "content recovery an
//! optional last step rather than having a fully automated process").

use crate::claim::{ClaimTrigger, RecoveryClaim};
use crate::methods::{method_success_probability, select_method, RecoveryMethod};
use crate::risk::{ClaimAssessment, RecoveryVerdict};
use mhw_identity::{CredentialStore, RecoveryOptions};
use mhw_obs::{buckets, MetricId, Registry};
use mhw_simclock::SimRng;
use mhw_types::{AccountId, Actor, ClaimId, SimDuration, SimTime};

/// Claims filed with the service.
pub const M_CLAIMS_FILED: MetricId = MetricId("recovery.claims_filed");
/// Claims whose verification succeeded (password reset).
pub const M_CLAIMS_SUCCEEDED: MetricId = MetricId("recovery.claims_succeeded");
/// Claims whose verification failed.
pub const M_CLAIMS_FAILED: MetricId = MetricId("recovery.claims_failed");
/// Flag → resolution latency, simulated seconds (the Figure 9
/// recovery-latency distribution).
pub const M_RESOLUTION_LATENCY_SECS: MetricId = MetricId("recovery.resolution_latency_secs");
/// Claims answered with a step-up challenge by the risk layer.
pub const M_CLAIMS_STEPPED_UP: MetricId = MetricId("recovery.claims_stepped_up");
/// Claims denied outright by the risk layer.
pub const M_CLAIMS_DENIED: MetricId = MetricId("recovery.claims_denied");
/// Hijacker recovery-pivot claims filed (kept out of the owner claim
/// counters so Figure 9/10 measurements stay owner-only).
pub const M_PIVOT_CLAIMS: MetricId = MetricId("recovery.pivot_claims");
/// Pivot claims that produced a password takeover.
pub const M_PIVOT_TAKEOVERS: MetricId = MetricId("recovery.pivot_takeovers");

/// Outcome of processing one claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimResolution {
    /// The processed claim as recorded in the claim log.
    pub claim: RecoveryClaim,
    /// New password set on success (synthetic token).
    pub password_reset: bool,
}

/// The recovery service.
#[derive(Debug, Clone)]
pub struct RecoveryService {
    next_claim: u32,
    claims: Vec<RecoveryClaim>,
    /// Fraction of dual-option users who pick email over SMS (email is
    /// "our most popular account recovery option", §6.3).
    pub email_preference: f64,
    metrics: Registry,
}

impl Default for RecoveryService {
    fn default() -> Self {
        Self::new()
    }
}

impl RecoveryService {
    /// An empty service with the paper-calibrated email preference.
    pub fn new() -> Self {
        RecoveryService {
            next_claim: 0,
            claims: Vec::new(),
            email_preference: 0.60,
            metrics: Registry::new()
                .with_counter(M_CLAIMS_FILED)
                .with_counter(M_CLAIMS_SUCCEEDED)
                .with_counter(M_CLAIMS_FAILED)
                .with_counter(M_CLAIMS_STEPPED_UP)
                .with_counter(M_CLAIMS_DENIED)
                .with_counter(M_PIVOT_CLAIMS)
                .with_counter(M_PIVOT_TAKEOVERS)
                .with_histogram(M_RESOLUTION_LATENCY_SECS, buckets::LATENCY_SECS),
        }
    }

    /// The service's metrics registry (claim counters and the
    /// flag-to-resolution latency distribution).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// All processed claims (the Figure 9/10 dataset).
    pub fn claims(&self) -> &[RecoveryClaim] {
        &self.claims
    }

    /// File and immediately process a claim.
    ///
    /// Verification takes minutes; the dominant latency component is how
    /// long the victim took to *file* (modelled upstream). On success
    /// the password is reset by the system, evicting the hijacker.
    ///
    /// This is the legacy unscored path: it draws exactly the same RNG
    /// sequence as before claim risk scoring existed, so worlds with
    /// scoring disabled stay byte-for-byte reproducible.
    #[allow(clippy::too_many_arguments)]
    pub fn process_claim(
        &mut self,
        account: AccountId,
        hijacked_at: SimTime,
        flagged_at: SimTime,
        trigger: ClaimTrigger,
        filed_at: SimTime,
        options: &RecoveryOptions,
        credentials: &mut CredentialStore,
        exclude: &[RecoveryMethod],
        rng: &mut SimRng,
    ) -> ClaimResolution {
        self.process_claim_assessed(
            account,
            hijacked_at,
            flagged_at,
            trigger,
            filed_at,
            options,
            credentials,
            exclude,
            None,
            rng,
        )
    }

    /// [`RecoveryService::process_claim`] with an optional risk
    /// assessment from the
    /// [`RecoveryRiskService`](crate::risk::RecoveryRiskService).
    ///
    /// With `assessment == None` the draw sequence is identical to the
    /// unscored path. With a verdict attached:
    ///
    /// * [`RecoveryVerdict::Deny`] — the claim fails regardless of the
    ///   channel outcome (for a rightful owner, a lockout);
    /// * [`RecoveryVerdict::StepUp`] — a channel success must also pass
    ///   the step-up challenge ([`ClaimAssessment::step_up_pass`]);
    /// * [`RecoveryVerdict::Allow`] — verification proceeds as usual.
    #[allow(clippy::too_many_arguments)]
    pub fn process_claim_assessed(
        &mut self,
        account: AccountId,
        hijacked_at: SimTime,
        flagged_at: SimTime,
        trigger: ClaimTrigger,
        filed_at: SimTime,
        options: &RecoveryOptions,
        credentials: &mut CredentialStore,
        exclude: &[RecoveryMethod],
        assessment: Option<ClaimAssessment>,
        rng: &mut SimRng,
    ) -> ClaimResolution {
        let id = ClaimId(self.next_claim);
        self.next_claim += 1;
        let opts = options.get(account);
        let method = select_method(opts, rng.chance(self.email_preference), exclude);
        let p = method_success_probability(method, opts);
        let channel_ok = rng.chance(p);
        let succeeded = match assessment.map(|a| a.verdict) {
            None | Some(RecoveryVerdict::Allow) => channel_ok,
            Some(RecoveryVerdict::StepUp) => {
                self.metrics.inc(M_CLAIMS_STEPPED_UP);
                // The extra draw only happens on stepped-up claims, which
                // only exist in scored worlds — unscored worlds keep the
                // legacy draw sequence.
                let pass = assessment.map(|a| a.step_up_pass).unwrap_or(1.0);
                channel_ok && rng.chance(pass)
            }
            Some(RecoveryVerdict::Deny) => {
                self.metrics.inc(M_CLAIMS_DENIED);
                false
            }
        };
        // Verification round-trip: minutes for SMS/email, longer for
        // fallback review.
        let processing = match method {
            RecoveryMethod::Sms => SimDuration::from_mins(3 + rng.below(10)),
            RecoveryMethod::Email => SimDuration::from_mins(5 + rng.below(25)),
            RecoveryMethod::Fallback => SimDuration::from_hours(2 + rng.below(20)),
        };
        let resolved_at = filed_at.plus(processing);
        let mut password_reset = false;
        if succeeded {
            let new_pw = format!("reset-{}-{}", account.index(), rng.below(1_000_000));
            credentials.change_password(account, Actor::System, &new_pw, resolved_at);
            password_reset = true;
        }
        self.metrics.inc(M_CLAIMS_FILED);
        if succeeded {
            self.metrics.inc(M_CLAIMS_SUCCEEDED);
        } else {
            self.metrics.inc(M_CLAIMS_FAILED);
        }
        self.metrics
            .observe(M_RESOLUTION_LATENCY_SECS, resolved_at.since(flagged_at).as_secs());
        let claim = RecoveryClaim {
            id,
            account,
            hijacked_at,
            flagged_at,
            trigger,
            filed_at,
            method: Some(method),
            succeeded,
            resolved_at: Some(resolved_at),
            risk_score: assessment.map(|a| a.score),
            verdict: assessment.map(|a| a.verdict),
        };
        self.claims.push(claim.clone());
        ClaimResolution { claim, password_reset }
    }

    /// Process a hijacker's recovery-pivot claim: a crew that failed the
    /// login challenge filing "forgot password" with harvested personal
    /// data (the Büttner et al. attack).
    ///
    /// `takeover_probability` is the caller's channel-takeover estimate
    /// (see [`hijacker_takeover_probability`](crate::risk::hijacker_takeover_probability)),
    /// already discounted for a step-up verdict. A
    /// [`RecoveryVerdict::Deny`] fails outright. On success the
    /// *hijacker* resets the password, completing the takeover.
    ///
    /// Pivot claims are logged with [`ClaimTrigger::HijackerPivot`] and
    /// counted under the dedicated pivot metrics only, so owner-side
    /// measurements (Figure 9 latency, Figure 10 method rates) are
    /// unaffected.
    #[allow(clippy::too_many_arguments)]
    pub fn process_hijacker_claim(
        &mut self,
        account: AccountId,
        hijacked_at: SimTime,
        filed_at: SimTime,
        assessment: ClaimAssessment,
        takeover_probability: f64,
        actor: Actor,
        credentials: &mut CredentialStore,
        rng: &mut SimRng,
    ) -> ClaimResolution {
        let id = ClaimId(self.next_claim);
        self.next_claim += 1;
        // One draw regardless of verdict, so a posture change alone
        // never shifts the stream for later claims.
        let channel_ok = rng.chance(takeover_probability);
        let succeeded = channel_ok && assessment.verdict != RecoveryVerdict::Deny;
        if assessment.verdict == RecoveryVerdict::Deny {
            self.metrics.inc(M_CLAIMS_DENIED);
        }
        // Pivots ride the fallback channel (knowledge test / manual
        // review with researched answers) — hours, not minutes.
        let processing = SimDuration::from_hours(2 + rng.below(20));
        let resolved_at = filed_at.plus(processing);
        let mut password_reset = false;
        if succeeded {
            let new_pw = format!("pivot-{}-{}", account.index(), rng.below(1_000_000));
            credentials.change_password(account, actor, &new_pw, resolved_at);
            password_reset = true;
        }
        self.metrics.inc(M_PIVOT_CLAIMS);
        if succeeded {
            self.metrics.inc(M_PIVOT_TAKEOVERS);
        }
        let claim = RecoveryClaim {
            id,
            account,
            hijacked_at,
            // No provider flag is involved in a pivot; the claim's own
            // filing time anchors it.
            flagged_at: filed_at,
            trigger: ClaimTrigger::HijackerPivot,
            filed_at,
            method: Some(RecoveryMethod::Fallback),
            succeeded,
            resolved_at: Some(resolved_at),
            risk_score: Some(assessment.score),
            verdict: Some(assessment.verdict),
        };
        self.claims.push(claim.clone());
        ClaimResolution { claim, password_reset }
    }

    /// Success rate per method over all *owner* claims (Figure 10).
    /// Hijacker-pivot claims are excluded: they measure the attacker,
    /// not the recovery channels.
    pub fn success_rate_by_method(&self) -> Vec<(RecoveryMethod, f64, usize)> {
        RecoveryMethod::ALL
            .iter()
            .map(|m| {
                let of_method: Vec<_> = self
                    .claims
                    .iter()
                    .filter(|c| c.method == Some(*m) && c.trigger != ClaimTrigger::HijackerPivot)
                    .collect();
                let n = of_method.len();
                let ok = of_method.iter().filter(|c| c.succeeded).count();
                (*m, if n == 0 { 0.0 } else { ok as f64 / n as f64 }, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_identity::{RecoveryEmail, RecoveryPhone};
    use mhw_types::{CountryCode, EmailAddress, PhoneNumber};

    struct Fixture {
        options: RecoveryOptions,
        credentials: CredentialStore,
        service: RecoveryService,
        rng: SimRng,
    }

    /// Build `n` accounts with the given option layout.
    fn fixture(n: usize, phone: bool, email: bool) -> Fixture {
        let mut options = RecoveryOptions::new();
        let mut credentials = CredentialStore::new();
        for i in 0..n {
            let a = AccountId::from_index(i);
            options.register(a);
            credentials.register(a, &format!("pw{i}"));
            options.init(
                a,
                phone.then(|| RecoveryPhone {
                    number: PhoneNumber::new(CountryCode::US, 10_000_000 + i as u64),
                    up_to_date: i % 12 != 0, // ~8% stale
                    gateway_reliability: 0.95,
                }),
                email.then(|| RecoveryEmail {
                    address: EmailAddress::new(format!("b{i}"), "backup.net"),
                    verified: true,
                    mistyped: i % 20 == 0, // 5%
                    recycled: i % 14 == 0, // ~7%
                }),
                None,
            );
        }
        Fixture {
            options,
            credentials,
            service: RecoveryService::new(),
            rng: SimRng::from_seed(77),
        }
    }

    fn run_all(f: &mut Fixture, n: usize) {
        for i in 0..n {
            let a = AccountId::from_index(i);
            f.service.process_claim(
                a,
                SimTime::from_secs(1000),
                SimTime::from_secs(1500),
                ClaimTrigger::SelfNoticed,
                SimTime::from_secs(5000),
                &f.options,
                &mut f.credentials,
                &[],
                &mut f.rng,
            );
        }
    }

    #[test]
    fn successful_claims_reset_the_password() {
        let mut f = fixture(50, true, false);
        run_all(&mut f, 50);
        for c in f.service.claims() {
            if c.succeeded {
                assert!(
                    !f.credentials.verify(c.account, &format!("pw{}", c.account.index())),
                    "old password must die on recovery"
                );
                let last = f.credentials.changes(c.account).last().unwrap();
                assert_eq!(last.actor, Actor::System);
            } else {
                assert!(f.credentials.verify(c.account, &format!("pw{}", c.account.index())));
            }
        }
    }

    #[test]
    fn sms_success_rate_matches_figure10_band() {
        let mut f = fixture(4000, true, false);
        run_all(&mut f, 4000);
        let rates = f.service.success_rate_by_method();
        let (_, sms_rate, sms_n) = rates[0];
        assert!(sms_n > 3900);
        // Figure 10: 80.91%. Our decomposition: 92% fresh × 95% gateway ×
        // 95.5% non-confusion ≈ 0.834.
        assert!((sms_rate - 0.81).abs() < 0.05, "SMS rate {sms_rate}");
    }

    #[test]
    fn email_success_rate_matches_figure10_band() {
        let mut f = fixture(4000, false, true);
        run_all(&mut f, 4000);
        let rates = f.service.success_rate_by_method();
        let (_, email_rate, email_n) = rates[1];
        // Recycled addresses fall through to fallback.
        assert!(email_n > 3500);
        assert!((email_rate - 0.745).abs() < 0.06, "email rate {email_rate}");
    }

    #[test]
    fn fallback_success_rate_is_poor() {
        let mut f = fixture(3000, false, false);
        run_all(&mut f, 3000);
        let rates = f.service.success_rate_by_method();
        let (_, rate, n) = rates[2];
        assert_eq!(n, 3000);
        assert!(rate < 0.2, "fallback rate {rate}");
    }

    #[test]
    fn unscored_and_allow_assessed_claims_draw_identically() {
        // An Allow assessment must not disturb the RNG stream: same
        // seed, same outcome, same stream position afterwards.
        let mut a = fixture(20, true, true);
        let mut b = fixture(20, true, true);
        for i in 0..20 {
            let acct = AccountId::from_index(i);
            let r1 = a.service.process_claim(
                acct,
                SimTime::from_secs(1000),
                SimTime::from_secs(1500),
                ClaimTrigger::SelfNoticed,
                SimTime::from_secs(5000),
                &a.options,
                &mut a.credentials,
                &[],
                &mut a.rng,
            );
            let r2 = b.service.process_claim_assessed(
                acct,
                SimTime::from_secs(1000),
                SimTime::from_secs(1500),
                ClaimTrigger::SelfNoticed,
                SimTime::from_secs(5000),
                &b.options,
                &mut b.credentials,
                &[],
                Some(ClaimAssessment {
                    score: 0.1,
                    verdict: RecoveryVerdict::Allow,
                    step_up_pass: 0.85,
                }),
                &mut b.rng,
            );
            assert_eq!(r1.claim.succeeded, r2.claim.succeeded);
            assert_eq!(r1.claim.method, r2.claim.method);
            assert_eq!(r1.claim.resolved_at, r2.claim.resolved_at);
        }
        assert_eq!(a.rng.state(), b.rng.state(), "Allow verdicts must not consume draws");
    }

    #[test]
    fn denied_claims_never_reset_the_password() {
        let mut f = fixture(200, true, true);
        for i in 0..200 {
            let acct = AccountId::from_index(i);
            let r = f.service.process_claim_assessed(
                acct,
                SimTime::from_secs(1000),
                SimTime::from_secs(1500),
                ClaimTrigger::SelfNoticed,
                SimTime::from_secs(5000),
                &f.options,
                &mut f.credentials,
                &[],
                Some(ClaimAssessment {
                    score: 0.95,
                    verdict: RecoveryVerdict::Deny,
                    step_up_pass: 0.85,
                }),
                &mut f.rng,
            );
            assert!(!r.claim.succeeded && !r.password_reset);
            assert_eq!(r.claim.verdict, Some(RecoveryVerdict::Deny));
            assert!(f.credentials.verify(acct, &format!("pw{i}")));
        }
        assert_eq!(f.service.metrics().snapshot().counter("recovery.claims_denied"), Some(200));
    }

    #[test]
    fn step_up_lowers_but_does_not_zero_success() {
        let run = |assessment: Option<ClaimAssessment>| {
            let mut f = fixture(2000, true, true);
            for i in 0..2000 {
                let acct = AccountId::from_index(i);
                f.service.process_claim_assessed(
                    acct,
                    SimTime::from_secs(1000),
                    SimTime::from_secs(1500),
                    ClaimTrigger::SelfNoticed,
                    SimTime::from_secs(5000),
                    &f.options,
                    &mut f.credentials,
                    &[],
                    assessment,
                    &mut f.rng,
                );
            }
            f.service.claims().iter().filter(|c| c.succeeded).count()
        };
        let plain = run(None);
        let stepped = run(Some(ClaimAssessment {
            score: 0.5,
            verdict: RecoveryVerdict::StepUp,
            step_up_pass: 0.5,
        }));
        assert!(stepped > 0, "owners still get through a step-up");
        assert!(
            (stepped as f64) < plain as f64 * 0.75,
            "step-up must cost successes: {stepped} vs {plain}"
        );
    }

    #[test]
    fn hijacker_pivot_claims_stay_out_of_owner_measurements() {
        let mut f = fixture(10, true, true);
        let assessment =
            ClaimAssessment { score: 0.5, verdict: RecoveryVerdict::StepUp, step_up_pass: 0.85 };
        let mut takeovers = 0;
        for i in 0..10 {
            let acct = AccountId::from_index(i);
            let r = f.service.process_hijacker_claim(
                acct,
                SimTime::from_secs(1000),
                SimTime::from_secs(5000),
                assessment,
                0.9,
                Actor::Hijacker(mhw_types::CrewId(1)),
                &mut f.credentials,
                &mut f.rng,
            );
            assert_eq!(r.claim.trigger, ClaimTrigger::HijackerPivot);
            assert_eq!(r.claim.latency(), None);
            if r.password_reset {
                takeovers += 1;
                assert!(
                    !f.credentials.verify(acct, &format!("pw{i}")),
                    "takeover must rotate the password"
                );
                let last = f.credentials.changes(acct).last().unwrap();
                assert!(last.actor.is_hijacker());
            }
        }
        assert!(takeovers > 0, "0.9 takeover probability over 10 claims");
        // Owner-side measurements exclude every pivot claim.
        for (_, _, n) in f.service.success_rate_by_method() {
            assert_eq!(n, 0, "pivot claims leaked into Figure 10 rates");
        }
        let snap = f.service.metrics().snapshot();
        assert_eq!(snap.counter("recovery.claims_filed"), Some(0));
        assert_eq!(snap.counter("recovery.pivot_claims"), Some(10));
        assert_eq!(snap.counter("recovery.pivot_takeovers"), Some(takeovers));
    }

    #[test]
    fn denied_hijacker_pivot_cannot_take_over() {
        let mut f = fixture(5, true, true);
        let assessment =
            ClaimAssessment { score: 0.99, verdict: RecoveryVerdict::Deny, step_up_pass: 0.85 };
        for i in 0..5 {
            let r = f.service.process_hijacker_claim(
                AccountId::from_index(i),
                SimTime::from_secs(1000),
                SimTime::from_secs(5000),
                assessment,
                1.0,
                Actor::Hijacker(mhw_types::CrewId(1)),
                &mut f.credentials,
                &mut f.rng,
            );
            assert!(!r.password_reset, "deny must be absolute");
        }
    }

    #[test]
    fn resolution_time_moves_forward() {
        let mut f = fixture(10, true, true);
        run_all(&mut f, 10);
        for c in f.service.claims() {
            assert!(c.resolved_at.unwrap() > c.filed_at);
        }
    }
}
