//! Remission — the §6.4 cleanup after ownership is restored.
//!
//! "The remission process include restoring hijacker-deleted content,
//! removing the hijacker-added content, and resetting all account
//! options to their original state." The deployment of exactly this
//! step is what drove the §5.4 drop in mass deletion (46% → 1.6%):
//! once deleted mail came back, deleting it stopped paying.

use mhw_identity::{RecoveryOptions, TwoFactorState};
use mhw_mailsys::MailProvider;
use mhw_types::{AccountId, Actor, SimTime};
use serde::{Deserialize, Serialize};

/// What remission restored/reverted on one account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemissionReport {
    /// Hijacker-purged messages restored from the audit trail.
    pub messages_restored: usize,
    /// Hijacker-deleted contacts restored.
    pub contacts_restored: usize,
    /// Hijacker-created mail filters removed.
    pub filters_removed: usize,
    /// Whether a hijacker-set Reply-To was rolled back.
    pub reply_to_reverted: bool,
    /// Whether hijacker-enrolled two-factor was disabled.
    pub twofactor_disabled: bool,
    /// Whether hijacker-changed recovery options were cleared for owner
    /// re-entry.
    pub recovery_options_reverted: bool,
    /// App passwords revoked (always all of them — any may be phished).
    pub app_passwords_revoked: usize,
}

/// Run remission for `account`, reverting everything a hijacker changed
/// at or after `hijack_start`.
///
/// Uses audit trails (who changed what, when) — the same information a
/// real provider has — never the live mailbox state alone.
pub fn run_remission(
    account: AccountId,
    hijack_start: SimTime,
    now: SimTime,
    provider: &mut MailProvider,
    options: &mut RecoveryOptions,
    twofactor: &mut TwoFactorState,
) -> RemissionReport {
    // Restore hijacker-deleted content.
    let mut report = RemissionReport {
        messages_restored: provider.mailbox_mut(account).restore_purged_since(hijack_start),
        contacts_restored: provider.mailbox_mut(account).restore_contacts_since(hijack_start),
        ..RemissionReport::default()
    };

    // Remove hijacker-added filters.
    for (filter, actor) in provider.filters_created_since(account, hijack_start) {
        if actor.is_hijacker() {
            provider.remove_filter(account, Actor::System, filter, now);
            report.filters_removed += 1;
        }
    }

    // Roll back a hijacker Reply-To.
    if let Some(previous) = provider.reply_to_before(account, hijack_start) {
        provider.set_reply_to(account, Actor::System, previous, now);
        report.reply_to_reverted = true;
    }

    // Disable hijacker-enrolled 2FA.
    if let Some(last) = twofactor.audit(account).last() {
        if last.at >= hijack_start && last.actor.is_hijacker() && twofactor.enabled(account) {
            twofactor.disable(account, Actor::System, now);
            report.twofactor_disabled = true;
        }
    }
    // Revoke app passwords unconditionally — cheap, and any of them may
    // have been phished (§8.2).
    report.app_passwords_revoked = twofactor.revoke_app_passwords(account);

    // Reset hijacker-changed recovery options: flag for owner review.
    if options.hijacker_changed_since(account, hijack_start) {
        // The provider cannot reconstruct the owner's old phone; it
        // clears hijacker-set values so the owner re-enters their own.
        options.set_phone(account, Actor::System, None, now);
        options.set_email(account, Actor::System, None, now);
        report.recovery_options_reverted = true;
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhw_mailsys::{FilterAction, Folder, MessageDraft};
    use mhw_types::{CountryCode, CrewId, EmailAddress, PhoneNumber};

    struct World {
        provider: MailProvider,
        options: RecoveryOptions,
        twofactor: TwoFactorState,
        account: AccountId,
    }

    fn world() -> World {
        let mut provider = MailProvider::new();
        let account = provider.create_account(EmailAddress::new("victim", "homemail.com"));
        let mut options = RecoveryOptions::new();
        options.register(account);
        let mut twofactor = TwoFactorState::new();
        twofactor.register(account);
        // Pre-hijack mail.
        for i in 0..6 {
            let d = MessageDraft::personal(
                vec![EmailAddress::new("victim", "homemail.com")],
                &format!("old {i}"),
                "content",
            );
            provider.deliver_external(
                account,
                EmailAddress::new("friend", "x.com"),
                &d,
                SimTime::from_secs(i),
                |_| false,
            );
        }
        World { provider, options, twofactor, account }
    }

    const HIJACK: SimTime = SimTime(1_000);
    const NOW: SimTime = SimTime(10_000);

    #[test]
    fn full_hijack_is_fully_reverted() {
        let mut w = world();
        let crew = Actor::Hijacker(CrewId(0));
        // The hijacker does everything §5.4 describes.
        w.provider.mass_delete(w.account, crew, SimTime::from_secs(2000));
        w.provider.create_filter(
            w.account,
            crew,
            None,
            None,
            true,
            FilterAction::ForwardTo(EmailAddress::new("dopp", "evil.net")),
            SimTime::from_secs(2100),
        );
        w.provider.set_reply_to(
            w.account,
            crew,
            Some(EmailAddress::new("dopp", "evil.net")),
            SimTime::from_secs(2200),
        );
        w.twofactor.enable(
            w.account,
            crew,
            PhoneNumber::new(CountryCode::NG, 80000001),
            SimTime::from_secs(2300),
        );
        w.options.set_phone(w.account, crew, None, SimTime::from_secs(2400));

        let report = run_remission(
            w.account,
            HIJACK,
            NOW,
            &mut w.provider,
            &mut w.options,
            &mut w.twofactor,
        );
        assert_eq!(report.messages_restored, 6);
        assert_eq!(report.filters_removed, 1);
        assert!(report.reply_to_reverted);
        assert!(report.twofactor_disabled);
        assert!(report.recovery_options_reverted);
        // State is actually clean.
        assert_eq!(w.provider.mailbox(w.account).len(), 6);
        assert!(w.provider.filters(w.account).is_empty());
        assert_eq!(w.provider.reply_to(w.account), None);
        assert!(!w.twofactor.enabled(w.account));
    }

    #[test]
    fn owner_changes_survive_remission() {
        let mut w = world();
        // Owner set their own filter and reply-to long before the hijack.
        let owner_filter = w.provider.create_filter(
            w.account,
            Actor::Owner,
            None,
            Some("news".into()),
            false,
            FilterAction::MoveTo(Folder::Trash),
            SimTime::from_secs(100),
        );
        // Owner 2FA.
        w.twofactor.enable(
            w.account,
            Actor::Owner,
            PhoneNumber::new(CountryCode::US, 55500001),
            SimTime::from_secs(200),
        );
        let report = run_remission(
            w.account,
            HIJACK,
            NOW,
            &mut w.provider,
            &mut w.options,
            &mut w.twofactor,
        );
        assert_eq!(report.filters_removed, 0);
        assert!(!report.twofactor_disabled, "owner 2FA must survive");
        assert!(w.twofactor.enabled(w.account));
        assert_eq!(w.provider.filters(w.account)[0].id, owner_filter);
        assert!(!report.recovery_options_reverted);
    }

    #[test]
    fn idempotent_on_clean_accounts() {
        let mut w = world();
        let r1 = run_remission(
            w.account,
            HIJACK,
            NOW,
            &mut w.provider,
            &mut w.options,
            &mut w.twofactor,
        );
        assert_eq!(r1, RemissionReport::default());
        let r2 = run_remission(
            w.account,
            HIJACK,
            NOW,
            &mut w.provider,
            &mut w.options,
            &mut w.twofactor,
        );
        assert_eq!(r2, RemissionReport::default());
    }

    #[test]
    fn owner_deletions_before_hijack_stay_deleted() {
        let mut w = world();
        // Owner purged a message pre-hijack.
        let id = w.provider.mailbox(w.account).list_folder(Folder::Inbox)[0];
        w.provider.purge_message(w.account, Actor::Owner, id, SimTime::from_secs(500));
        let crew = Actor::Hijacker(CrewId(0));
        w.provider.mass_delete(w.account, crew, SimTime::from_secs(2000));
        let report = run_remission(
            w.account,
            HIJACK,
            NOW,
            &mut w.provider,
            &mut w.options,
            &mut w.twofactor,
        );
        assert_eq!(report.messages_restored, 5);
        assert_eq!(w.provider.mailbox(w.account).len(), 5);
    }
}
