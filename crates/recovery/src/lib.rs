//! # mhw-recovery
//!
//! The account-recovery pipeline of §6:
//!
//! * [`claim`] — recovery claims: what triggered them (a proactive
//!   notification, the victim noticing a dead password, or an
//!   anti-abuse account disable) and how they resolved;
//! * [`methods`] — the verification channels and their §6.3 failure
//!   modes: SMS (stale numbers, unreliable gateways), secondary email
//!   (mistypes ⇒ ~5% bounces, recycling ⇒ never offered), and the
//!   fallback options (secret questions with poor recall, manual
//!   review) whose success "is significantly worse";
//! * [`service`] — claim processing: channel selection, verification,
//!   and on success a system-forced password reset;
//! * [`remission`] — the §6.4 cleanup: restore hijacker-deleted mail
//!   and contacts, remove hijacker filters, roll back Reply-To, disable
//!   hijacker 2FA, revoke app passwords.

pub mod claim;
pub mod methods;
pub mod remission;
pub mod service;

pub use claim::{ClaimTrigger, RecoveryClaim};
pub use methods::{method_success_probability, RecoveryMethod};
pub use remission::{run_remission, RemissionReport};
pub use service::{ClaimResolution, RecoveryService};
