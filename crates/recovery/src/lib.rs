//! # mhw-recovery
//!
//! The account-recovery pipeline of §6:
//!
//! * [`claim`] — recovery claims: what triggered them (a proactive
//!   notification, the victim noticing a dead password, or an
//!   anti-abuse account disable) and how they resolved;
//! * [`methods`] — the verification channels and their §6.3 failure
//!   modes: SMS (stale numbers, unreliable gateways), secondary email
//!   (mistypes ⇒ ~5% bounces, recycling ⇒ never offered), and the
//!   fallback options (secret questions with poor recall, manual
//!   review) whose success "is significantly worse";
//! * [`risk`] — risk-scored claims: the same signal machinery as the
//!   login path ([`mhw_defense::signals`]) plus claim-specific signals
//!   (method strength, secondary-channel reachability, secret-question
//!   guessability), decided by a configurable [`RecoveryPosture`];
//! * [`service`] — claim processing: channel selection, optional risk
//!   verdicts, verification, and on success a system-forced password
//!   reset;
//! * [`remission`] — the §6.4 cleanup: restore hijacker-deleted mail
//!   and contacts, remove hijacker filters, roll back Reply-To, disable
//!   hijacker 2FA, revoke app passwords.

#![deny(missing_docs)]

pub mod claim;
pub mod methods;
pub mod remission;
pub mod risk;
pub mod service;

pub use claim::{ClaimTrigger, RecoveryClaim};
pub use methods::{method_success_probability, RecoveryMethod};
pub use remission::{run_remission, RemissionReport};
pub use risk::{
    hijacker_takeover_probability, ClaimAssessment, ClaimSignals, RecoveryPosture,
    RecoveryRiskService, RecoveryVerdict,
};
pub use service::{ClaimResolution, RecoveryService};
