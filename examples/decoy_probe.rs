//! The decoy-credential honeypot (§5.1): inject valid credentials for
//! fake accounts into crew dropboxes and watch the login log for the
//! first hijacker touch — the Figure 7 experiment as a program.
//!
//! ```text
//! cargo run --example decoy_probe --release
//! ```

use manual_hijacking_wild::prelude::*;

fn main() {
    let config = ScenarioBuilder::small_test(0xDEC0).days(12).into_config();
    let (eco, report) = run_decoy_experiment(config, 80, 5);

    println!("== {} decoys submitted over 5 days ==", report.outcomes.len());
    println!(
        "never accessed: {:.0}% (dropbox suspensions)",
        report.fraction_never_accessed() * 100.0
    );
    println!("\ncumulative access CDF:");
    for (label, d) in [
        ("30 min", SimDuration::from_mins(30)),
        ("1 h", SimDuration::from_hours(1)),
        ("3 h", SimDuration::from_hours(3)),
        ("7 h", SimDuration::from_hours(7)),
        ("24 h", SimDuration::from_hours(24)),
        ("48 h", SimDuration::from_hours(48)),
    ] {
        let f = report.fraction_accessed_within(d);
        println!("  ≤ {label:<7} {:<50} {:5.1}%", "#".repeat((f * 50.0) as usize), f * 100.0);
    }

    // Who touched the decoys, and from where?
    println!("\nfirst touches:");
    for o in report.outcomes.iter().filter(|o| o.first_attempt.is_some()).take(8) {
        let at = o.first_attempt.unwrap();
        let record = eco
            .login_log
            .for_account(o.account)
            .find(|r| r.at == at)
            .expect("recorded attempt");
        let country = eco
            .geo
            .locate(record.ip)
            .map(|c| c.code())
            .unwrap_or("??");
        println!(
            "  {} submitted {} → touched {} from {} ({}), outcome {:?}",
            o.account,
            o.submitted_at,
            at,
            record.ip,
            country,
            record.outcome
        );
    }
}
