//! Phishing-page forensics: run a batch of hosted-form campaigns and
//! analyze their HTTP logs the way §4.2 does — referrers, phished TLDs,
//! conversion rates and arrival shapes.
//!
//! ```text
//! cargo run --example phishing_forensics --release
//! ```

use manual_hijacking_wild::analysis::{bar_chart, Breakdown, Ecdf, HourlySeries};
use manual_hijacking_wild::netmodel::referrer::Referrer;
use manual_hijacking_wild::prelude::*;

fn main() {
    let out = run_form_campaigns(60, true, 0xF0F0);

    // Referrers (Figure 3).
    let (mut blank, mut total) = (0usize, 0usize);
    let mut nonblank = Breakdown::new();
    for p in &out.pages {
        for r in &p.http_log {
            total += 1;
            match r.referrer {
                Referrer::Blank => blank += 1,
                Referrer::From(w) => nonblank.add(w.label()),
            }
        }
    }
    println!("== referrers ==");
    println!(
        "{total} requests, {:.2}% blank (email-driven traffic)",
        blank as f64 / total as f64 * 100.0
    );
    print!("{}", bar_chart(&nonblank, 36));

    // Phished TLDs (Figure 4).
    let mut tlds = Breakdown::new();
    for subs in &out.submissions {
        for s in subs {
            tlds.add(s.victim.address.tld().to_string());
        }
    }
    println!("\n== phished-address TLDs ==");
    print!("{}", bar_chart(&tlds, 36));

    // Conversion (Figure 5).
    let rates: Vec<f64> = out
        .pages
        .iter()
        .filter(|p| p.views() >= 30)
        .filter_map(|p| p.success_rate())
        .collect();
    let ecdf = Ecdf::new(rates);
    println!("\n== conversion ==");
    println!(
        "mean {:.1}%  min {:.1}%  median {:.1}%  max {:.1}%",
        ecdf.mean() * 100.0,
        ecdf.min().unwrap_or(0.0) * 100.0,
        ecdf.quantile(0.5) * 100.0,
        ecdf.max().unwrap_or(0.0) * 100.0
    );

    // Arrival shape (Figure 6).
    let outlier = &out.pages[out.outlier.unwrap()];
    let series = outlier.hourly_submissions();
    let quiet = series.iter().take_while(|c| **c == 0).count();
    println!("\n== the outlier campaign ==");
    println!(
        "quiet for {quiet} h (attackers testing), then {} submissions over {} h",
        HourlySeries::from_counts(series.clone()).total(),
        series.len()
    );
    let standard_decay = out
        .pages
        .iter()
        .enumerate()
        .filter(|(i, p)| Some(*i) != out.outlier && p.submissions() >= 30)
        .filter(|(_, p)| HourlySeries::from_counts(p.hourly_submissions()).is_decaying(2.0))
        .count();
    println!("{standard_decay} standard pages show the mass-mail decay pattern");
}
