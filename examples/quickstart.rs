//! Quickstart: build a small simulated ecosystem, run it for two
//! simulated weeks, and print what happened.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use manual_hijacking_wild::prelude::*;

fn main() {
    // A small world: 400 users, 9 crews, all defenses on.
    let eco = ScenarioBuilder::small_test(0xDEC0DE).days(14).run();

    let s = &eco.stats;
    println!("== two simulated weeks ==");
    println!("organic logins      {:>8}", s.organic_logins);
    println!("  challenged        {:>8}  (false-positive cost of the risk engine)", s.organic_challenges);
    println!("phishing lures sent {:>8}", s.lures_delivered);
    println!("  spam-foldered     {:>8}", s.lures_spam_foldered);
    println!("credentials stolen  {:>8}", s.credentials_captured);
    println!("hijack sessions     {:>8}", s.sessions_run);
    println!("successful hijacks  {:>8}", s.incidents);
    println!("  exploited         {:>8}", s.exploited);
    println!("  recovered         {:>8}", s.recovered);

    println!("\n== first few incidents ==");
    for inc in eco.real_incidents().take(5) {
        let session = &eco.sessions()[inc.session];
        println!(
            "{}: crew {} broke in at {}; profiled {:.1} min, value {:.2}, {} → {}",
            inc.account,
            eco.crews.get(inc.crew).spec.home,
            inc.hijack_start,
            session.profiling_seconds as f64 / 60.0,
            session.value_score,
            if session.exploited {
                format!("sent {} messages", session.messages_sent)
            } else {
                "abandoned (not valuable enough)".to_string()
            },
            match inc.recovered_at {
                Some(t) => format!("owner recovered at {t}"),
                None => "never recovered".to_string(),
            }
        );
    }
}
