//! Defense tuning: sweep the login-challenge threshold and ablate risk
//! signals, reproducing §8.1's "striking the right balance" discussion
//! as a runnable experiment.
//!
//! ```text
//! cargo run --example defense_tuning --release
//! ```

use manual_hijacking_wild::prelude::*;
use manual_hijacking_wild::types::Actor as A;

fn run_world(threshold: f64, weights: RiskWeights, seed: u64) -> (f64, f64, u64) {
    let mut eco = ScenarioBuilder::small_test(seed)
        .population(300)
        .days(10)
        .lures_per_user_day(2.0)
        .build();
    eco.login.engine_mut().challenge_threshold = threshold;
    eco.login.engine_mut().weights = weights;
    eco.run();
    let attempts = eco
        .sessions()
        .iter()
        .filter(|s| s.password_eventually_correct)
        .count()
        .max(1);
    let hijack_success =
        eco.sessions().iter().filter(|s| s.logged_in).count() as f64 / attempts as f64;
    let owner_challenge =
        eco.stats.organic_challenges as f64 / eco.stats.organic_logins.max(1) as f64;
    (hijack_success, owner_challenge, eco.stats.incidents)
}

fn main() {
    println!("== challenge-threshold sweep (the §8.1 balance) ==");
    println!("{:>10} {:>16} {:>20} {:>10}", "threshold", "hijack success", "owners challenged", "incidents");
    for t in [0.10, 0.20, 0.28, 0.40, 0.60, 0.90] {
        let (fnr, fpr, incidents) = run_world(t, RiskWeights::default(), 0xBA1);
        println!("{t:>10.2} {:>15.1}% {:>19.2}% {incidents:>10}", fnr * 100.0, fpr * 100.0);
    }

    println!("\n== signal ablations at t = 0.28 ==");
    let baseline = run_world(0.28, RiskWeights::default(), 0xAB1);
    println!("baseline             hijack success {:>5.1}%", baseline.0 * 100.0);
    for signal in ["new_country", "impossible_travel", "new_device", "ip_fanout"] {
        let (fnr, _, _) = run_world(0.28, RiskWeights::default().without(signal), 0xAB1);
        println!("without {signal:<18} hijack success {:>5.1}%", fnr * 100.0);
    }

    println!("\n== what hijackers face at the challenge (§8.2) ==");
    let eco = ScenarioBuilder::small_test(0xC4A)
        .days(12)
        .lures_per_user_day(2.0)
        .run();
    let (mut sms, mut sms_pass, mut knowledge, mut knowledge_pass) = (0, 0, 0, 0);
    for r in eco.login_log.records() {
        if !matches!(r.actor, A::Hijacker(_)) {
            continue;
        }
        if let Some(c) = r.challenge {
            match c.kind {
                manual_hijacking_wild::identity::ChallengeKind::SmsCode => {
                    sms += 1;
                    sms_pass += c.passed as u32;
                }
                manual_hijacking_wild::identity::ChallengeKind::Knowledge => {
                    knowledge += 1;
                    knowledge_pass += c.passed as u32;
                }
            }
        }
    }
    println!("SMS possession:      {sms_pass}/{sms} passed (phone cannot be faked)");
    println!("knowledge questions: {knowledge_pass}/{knowledge} passed (answers are researchable)");
}
