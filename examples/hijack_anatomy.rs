//! Anatomy of one manual hijacking: the paper's §5 lifecycle replayed
//! against a single victim, narrated step by step from the logs.
//!
//! ```text
//! cargo run --example hijack_anatomy --release
//! ```

use manual_hijacking_wild::mailsys::MailEventKind;
use manual_hijacking_wild::prelude::*;

fn main() {
    let eco = ScenarioBuilder::small_test(0xA11CE)
        .days(16)
        .lures_per_user_day(2.0) // make sure something happens
        .run();

    // Pick the richest exploited incident.
    let Some(incident) = eco
        .real_incidents()
        .filter(|i| eco.sessions()[i.session].exploited)
        .max_by_key(|i| eco.sessions()[i.session].messages_sent)
        .cloned()
    else {
        println!("no exploited incident this run — try another seed");
        return;
    };
    let session = &eco.sessions()[incident.session];
    let account = incident.account;
    let crew = eco.crews.get(incident.crew);

    println!("== victim ==");
    println!("account   {account} ({})", eco.provider.address_of(account));
    println!("crew      {} based in {}", incident.crew, crew.spec.home.name());
    println!("schedule  crew works 9–18 local (UTC{:+})", crew.spec.home.utc_offset_hours());

    println!("\n== break-in ==");
    println!("{}  first successful hijacker login ({} attempts)", incident.hijack_start, session.login_attempts);

    println!("\n== value assessment ({:.1} min, §5.2) ==", session.profiling_seconds as f64 / 60.0);
    for q in &session.searches {
        println!("  searched {q:?}");
    }
    for f in &session.folders_opened {
        println!("  opened {f:?}");
    }
    println!("  reviewed {} contacts → value score {:.2}", session.contacts_seen, session.value_score);

    println!("\n== exploitation ({:?}, §5.3) ==", session.exploit_kind.unwrap());
    println!(
        "  {} messages ({} scam, {} phishing), up to {} recipients each",
        session.messages_sent, session.scam_messages, session.phishing_messages, session.max_recipients
    );

    println!("\n== retention tactics (§5.4) ==");
    let r = &session.retention;
    for (done, what) in [
        (r.password_changed, "changed the password (lockout)"),
        (r.recovery_options_changed, "cleared the recovery options"),
        (r.mass_deleted, "mass-deleted mail and contacts"),
        (r.filter_created, "installed a forward-all filter to a doppelganger"),
        (r.reply_to_set, "set a doppelganger Reply-To"),
        (r.twofactor_locked, "enabled 2FA with a burner phone"),
    ] {
        if done {
            println!("  ✔ {what}");
        }
    }

    println!("\n== defense & recovery (§6, §8) ==");
    if let Some(t) = incident.disabled_at {
        println!("{t}  behavioral monitor disabled the account");
    }
    if let Some(t) = incident.flagged_at {
        println!("{t}  account flagged as hijacked");
    }
    match incident.recovered_at {
        Some(t) => {
            println!("{t}  ownership restored to the victim");
            if let Some(rem) = incident.remission {
                println!(
                    "      remission: restored {} messages, {} contacts; removed {} filters{}{}",
                    rem.messages_restored,
                    rem.contacts_restored,
                    rem.filters_removed,
                    if rem.reply_to_reverted { ", reverted Reply-To" } else { "" },
                    if rem.twofactor_disabled { ", disabled hijacker 2FA" } else { "" },
                );
            }
        }
        None => println!("(never recovered within the simulated window)"),
    }

    // Raw provider-log excerpt for the hijack session window.
    println!("\n== provider log excerpt ==");
    let end = session.ended_at;
    for e in eco
        .provider
        .log()
        .iter()
        .filter(|e| e.account == account && e.at >= incident.hijack_start && e.at <= end)
        .take(15)
    {
        let what = match &e.kind {
            MailEventKind::Searched { query } => format!("SEARCH {query:?}"),
            MailEventKind::FolderOpened { folder } => format!("OPEN {folder:?}"),
            MailEventKind::ContactsViewed { count } => format!("CONTACTS ({count})"),
            MailEventKind::Sent { recipients, .. } => format!("SEND → {recipients} recipients"),
            MailEventKind::FilterCreated { .. } => "FILTER created".to_string(),
            MailEventKind::ReplyToChanged { .. } => "REPLY-TO changed".to_string(),
            MailEventKind::Purged { .. } => "PURGE".to_string(),
            other => format!("{other:?}"),
        };
        println!("  {}  {:?}  {}", e.at, e.actor, what);
    }
}
