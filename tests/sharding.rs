//! The sharded engine's determinism contract and the global ordering
//! guarantees of the unified event-log API.
//!
//! The load-bearing test is `worker_count_never_changes_the_dataset`:
//! logical shards are scenario semantics, worker threads are pure
//! mechanics, so the digest over every produced dataset must be
//! byte-identical at any parallelism level.

use manual_hijacking_wild::prelude::*;
use manual_hijacking_wild::types::{LogStore, DAY};
use proptest::prelude::*;

/// A small sharded scenario exercising every cross-shard path: the
/// credential market, contact-graph spillover, and engine-scheduled
/// decoy probes.
fn engine(seed: u64, shards: u16) -> ShardedEngine {
    let mut config = ScenarioConfig::small_test(seed);
    config.days = 6;
    config.population.n_users = 240;
    config.market_share = 0.3;
    ShardedEngine::new(config, shards)
        .contact_spillover(0.25)
        .decoys(6, 3)
}

#[test]
fn worker_count_never_changes_the_dataset() {
    let baseline = engine(0x5A4D, 4).workers(1).run().expect("engine run");
    for workers in [2, 4, 5, 8] {
        let run = engine(0x5A4D, 4).workers(workers).run().expect("engine run");
        assert_eq!(
            run.dataset_digest(),
            baseline.dataset_digest(),
            "digest diverged at {workers} workers"
        );
        assert_eq!(run.market_trades, baseline.market_trades);
        assert_eq!(run.cross_shard_lures, baseline.cross_shard_lures);
        assert_eq!(
            run.run_report().to_json(),
            baseline.run_report().to_json(),
            "run report diverged at {workers} workers"
        );
    }
}

#[test]
fn work_stealing_keeps_the_digest_under_extreme_imbalance() {
    // One shard carries ~10x the population of its three peers, so any
    // static bucket assignment would leave workers idle and any
    // scheduling leak would move records between runs. The stolen
    // schedule differs wildly across worker counts; the datasets must
    // not.
    let heavy = |workers: usize| {
        let mut config = ScenarioConfig::small_test(0xBEEF);
        config.days = 4;
        config.population.n_users = 260;
        config.market_share = 0.3;
        ShardedEngine::new(config, 4)
            .shard_weights(vec![10, 1, 1, 1])
            .contact_spillover(0.25)
            .workers(workers)
            .run()
            .expect("engine run")
    };
    let baseline = heavy(1);
    let populations: Vec<usize> =
        baseline.shards().iter().map(|e| e.population.len()).collect();
    assert!(
        populations[0] >= 9 * populations[1].max(1),
        "weights did not skew the population: {populations:?}"
    );
    for workers in [2, 5, 8] {
        let run = heavy(workers);
        assert_eq!(
            run.dataset_digest(),
            baseline.dataset_digest(),
            "digest diverged at {workers} workers under imbalance"
        );
    }
}

#[test]
fn same_seed_same_digest_different_seed_different_digest() {
    let a = engine(0xD16E, 3).run().expect("engine run");
    let b = engine(0xD16E, 3).run().expect("engine run");
    let c = engine(0xD16F, 3).run().expect("engine run");
    assert_eq!(a.dataset_digest(), b.dataset_digest());
    assert_ne!(a.dataset_digest(), c.dataset_digest());
}

#[test]
fn cross_shard_effects_actually_fire() {
    let run = engine(0xC0DE, 4).workers(2).run().expect("engine run");
    assert!(run.market_trades > 0, "credential market never traded");
    assert!(run.cross_shard_lures > 0, "contact graph never crossed shards");
    // The market is a diversion, not a loss: total captures stay healthy.
    assert!(run.total_stats().credentials_captured > 0);
    // All three merged logs carry records from more than one shard.
    let login_shards: std::collections::HashSet<u16> =
        run.merged_logins().iter().map(|r| r.key.shard).collect();
    let mail_shards: std::collections::HashSet<u16> =
        run.merged_mail_events().iter().map(|e| e.key.shard).collect();
    assert!(login_shards.len() > 1);
    assert!(mail_shards.len() > 1);
}

#[test]
fn merged_views_are_complete_and_globally_ordered() {
    let run = engine(0xF00D, 3).workers(3).run().expect("engine run");
    let merged = run.merged_logins();
    let per_shard: usize = run.shards().iter().map(|e| e.login_log.len()).sum();
    assert_eq!(merged.len(), per_shard, "merge dropped or duplicated records");
    for w in merged.windows(2) {
        assert!(
            w[0].key < w[1].key,
            "merged login log out of (at, shard, seq) order: {:?} !< {:?}",
            w[0].key,
            w[1].key
        );
    }
    for w in run.merged_mail_events().windows(2) {
        assert!(w[0].key < w[1].key, "merged mail log out of order");
    }
    for w in run.merged_notifications().windows(2) {
        assert!(w[0].key < w[1].key, "merged notification log out of order");
    }
}

#[test]
fn one_shard_engine_matches_the_plain_scenario() {
    // A single shard with the market off is exactly the original
    // single-threaded simulator — sharding must cost nothing
    // semantically.
    let mut config = ScenarioConfig::small_test(0x0135);
    config.days = 5;
    config.population.n_users = 200;
    let direct = ScenarioBuilder::new(config.clone()).run();
    let run = ShardedEngine::new(config, 1).run().expect("engine run");
    let eco = &run.shards()[0];
    assert_eq!(eco.login_log.len(), direct.login_log.len());
    assert_eq!(eco.stats.credentials_captured, direct.stats.credentials_captured);
    assert_eq!(eco.stats.incidents, direct.stats.incidents);
    assert_eq!(eco.stats.recovered, direct.stats.recovered);
}

proptest! {
    /// Merging arbitrary per-shard segments yields a strictly
    /// increasing (SimTime, shard, seq) sequence containing every
    /// record exactly once — the ordering contract every consumer of
    /// the unified log API leans on.
    #[test]
    fn merge_orders_any_segments(
        shard_sizes in proptest::collection::vec(0usize..40, 1..6),
        times in proptest::collection::vec(0u64..3 * DAY, 1..200),
    ) {
        let mut segments: Vec<LogStore<u64>> = Vec::new();
        let mut t = times.iter().cycle();
        let mut total = 0usize;
        for (shard, n) in shard_sizes.iter().enumerate() {
            let mut seg = LogStore::for_shard(shard as u16);
            for i in 0..*n {
                seg.append(SimTime::from_secs(*t.next().unwrap()), i as u64);
                total += 1;
            }
            segments.push(seg);
        }
        let merged = LogStore::merge(segments.iter());
        prop_assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            prop_assert!(w[0].key < w[1].key, "keys must be unique and sorted");
        }
        // Every shard's records survive the merge exactly once (dense
        // seqs 0..n), and records sharing an instant on one shard keep
        // their emission order.
        for (shard, n) in shard_sizes.iter().enumerate() {
            let mut seqs: Vec<u64> = merged
                .iter()
                .filter(|e| e.key.shard == shard as u16)
                .map(|e| e.key.seq)
                .collect();
            seqs.sort_unstable();
            prop_assert_eq!(seqs, (0..*n as u64).collect::<Vec<_>>());
        }
        for w in merged.windows(2) {
            if w[0].key.at == w[1].key.at && w[0].key.shard == w[1].key.shard {
                prop_assert!(w[0].key.seq < w[1].key.seq);
            }
        }
    }

    /// The k-way merge must agree element-for-element with the old
    /// sort-based reference (concatenate everything, stable-sort by
    /// key) on any input: duplicate `at` instants across and within
    /// shards, empty segments in any position, and segments appended
    /// out of time order.
    #[test]
    fn kway_merge_matches_the_sort_based_reference(
        shard_sizes in proptest::collection::vec(0usize..25, 1..7),
        // A tiny time range forces heavy `at` collisions, and the
        // arbitrary order means many segments are NOT time-sorted,
        // exercising the merge's per-segment resort path alongside the
        // sorted-cursor fast path.
        times in proptest::collection::vec(0u64..8, 1..120),
    ) {
        let mut segments: Vec<LogStore<u64>> = Vec::new();
        let mut t = times.iter().cycle();
        for (shard, n) in shard_sizes.iter().enumerate() {
            let mut seg = LogStore::for_shard(shard as u16);
            for i in 0..*n {
                seg.append(SimTime::from_secs(*t.next().unwrap()), i as u64);
            }
            segments.push(seg);
        }
        let merged = LogStore::merge(segments.iter());
        // The reference the k-way merge replaced: concatenate, then
        // sort by the unique (at, shard, seq) key.
        let mut reference: Vec<_> =
            segments.iter().flat_map(|seg| seg.entries()).collect();
        reference.sort_by_key(|e| e.key);
        prop_assert_eq!(merged.len(), reference.len());
        for (got, want) in merged.iter().zip(&reference) {
            prop_assert_eq!(got.key, want.key);
            prop_assert_eq!(&got.record, &want.record);
        }
    }
}
