//! The observability layer's determinism contract.
//!
//! The load-bearing test is `run_report_is_byte_identical_across_workers`:
//! every quantity in a [`RunReport`] is a sim-time fact — a function of
//! the scenario (seed, shards, days, population) alone — so its JSON
//! serialisation must be byte-for-byte identical at any worker count.
//! Wall-clock observability (spans, phase profiles) lives in separate
//! artifacts and is deliberately absent from the report.

use manual_hijacking_wild::prelude::*;

/// The same small sharded scenario `tests/sharding.rs` pins, so the two
/// determinism contracts (dataset digest, run report) are checked over
/// identical worlds.
fn engine(seed: u64, shards: u16) -> ShardedEngine {
    let mut config = ScenarioConfig::small_test(seed);
    config.days = 6;
    config.population.n_users = 240;
    config.market_share = 0.3;
    ShardedEngine::new(config, shards)
        .contact_spillover(0.25)
        .decoys(6, 3)
}

#[test]
fn run_report_is_byte_identical_across_workers() {
    let baseline = engine(0x5A4D, 4).workers(1).run().expect("engine run");
    let baseline_json = baseline.run_report().to_json();
    for workers in [2, 4, 8] {
        let run = engine(0x5A4D, 4).workers(workers).run().expect("engine run");
        assert_eq!(
            run.run_report().to_json(),
            baseline_json,
            "run report diverged at {workers} workers"
        );
    }
    // And the report round-trips through its own parser.
    let parsed = RunReport::from_json(&baseline_json).expect("report parses");
    assert_eq!(parsed, baseline.run_report());
}

#[test]
fn report_covers_every_instrumented_subsystem() {
    let run = engine(0xBEEF, 3).workers(2).run().expect("engine run");
    let report = run.run_report();
    let counter = |name: &str| {
        report
            .metrics
            .counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or_else(|| panic!("counter {name} missing from report"))
    };
    // One nonzero counter per instrumented domain: identity, mailsys,
    // phishkit, adversary, defense, recovery, plus the engine itself.
    assert!(counter("identity.login_attempts") > 0);
    assert!(counter("mailsys.mail_delivered") > 0);
    assert!(counter("phishkit.pages_up") > 0);
    assert!(counter("adversary.sessions_run") > 0);
    assert!(counter("defense.notifications_sent") > 0);
    assert!(counter("recovery.claims_filed") > 0);
    assert_eq!(counter("engine.market_trades"), run.market_trades);
    assert_eq!(counter("engine.cross_shard_lures"), run.cross_shard_lures);
    // Latency distributions made it through the merge.
    let histogram = report
        .metrics
        .histograms
        .iter()
        .find(|h| h.name == "recovery.resolution_latency_secs")
        .expect("recovery latency histogram missing");
    assert!(histogram.total > 0);
    assert_eq!(histogram.total, counter("recovery.claims_filed"));
}

#[test]
fn shard_metrics_sum_into_the_merged_snapshot() {
    let run = engine(0xCAFE, 3).run().expect("engine run");
    let merged = run.metrics_snapshot();
    let per_shard: u64 = run
        .shards()
        .iter()
        .map(|eco| {
            eco.metrics_snapshot()
                .counters
                .iter()
                .find(|c| c.name == "identity.login_attempts")
                .map(|c| c.value)
                .unwrap_or(0)
        })
        .sum();
    let total = merged
        .counters
        .iter()
        .find(|c| c.name == "identity.login_attempts")
        .map(|c| c.value)
        .unwrap();
    assert!(total > 0);
    assert_eq!(total, per_shard, "merge must sum per-shard counters exactly");
}

#[test]
fn profile_is_wall_clock_and_stays_out_of_the_report() {
    let run = engine(0xD00D, 2).workers(2).run().expect("engine run");
    let profile = run.profile();
    assert_eq!(profile.workers, 2);
    assert!(profile.phases.iter().any(|p| p.phase == "shard_day"));
    assert!(profile.phases.iter().all(|p| p.calls > 0));
    // The report's serialisation must not mention wall-clock phases or
    // the worker count (both vary run to run; the report must not).
    let json = run.run_report().to_json();
    assert!(!json.contains("shard_day"));
    assert!(!json.contains("workers"));
}
