//! Serve-tier chaos: under an injected geo outage plus a slow signal
//! source, the resilient replay completes the whole stream with zero
//! panics, keeps p99 virtual scoring latency within 2× of the clean
//! arm, sheds a bounded (and reported) fraction of events, exercises
//! the circuit breakers through a full open → half-open → closed
//! cycle, and reproduces byte-identical digests on same-seed reruns.

use manual_hijacking_wild::core::replay::{self, ReplayLogin, WorkloadConfig};
use manual_hijacking_wild::core::resilience::{
    replay_stream_resilient, ReplayStats, ServeFaultPlan, ServeOptions, ShedPolicy,
    DEFAULT_DEADLINE_NS,
};
use manual_hijacking_wild::defense::{
    BreakerConfig, ResilienceConfig, ResilienceSnapshot, RiskEngine, RiskService, ServiceLimits,
    StreamingRiskService,
};
use manual_hijacking_wild::netmodel::GeoDb;
use manual_hijacking_wild::types::SimDuration;

/// ~30k events over 3 simulated days: long enough that breaker-trip
/// transients and half-open probes stay inside the p99 tail.
fn chaos_stream(geo: &GeoDb) -> Vec<ReplayLogin> {
    let cfg = WorkloadConfig {
        users: 5_000,
        days: 3,
        logins_per_user_day: 2,
        wrong_password_rate: 0.03,
        travel_rate: 0.02,
        attack_rate: 0.01,
        seed: 0xC4A05,
    };
    replay::generate_workload(&cfg, geo)
}

/// The serve posture under test: default deadline, a 12-simulated-hour
/// breaker cooldown so an incident that outlives the stream probes a
/// handful of times rather than thrashing.
fn chaos_service() -> StreamingRiskService {
    StreamingRiskService::with_resilience(
        RiskEngine::default(),
        ServiceLimits::default(),
        ResilienceConfig {
            deadline_ns: DEFAULT_DEADLINE_NS,
            breaker: BreakerConfig { cooldown: SimDuration::from_hours(12), ..Default::default() },
        },
    )
}

struct ArmResult {
    digest: u64,
    stats: ReplayStats,
    resilience: ResilienceSnapshot,
    latencies_ns: Vec<u64>,
}

fn run_arm(geo: &GeoDb, events: &[ReplayLogin], faults: ServeFaultPlan) -> ArmResult {
    let mut service = chaos_service();
    let opts = ServeOptions {
        queue_cap: 12,
        shed_policy: ShedPolicy::LowestRiskFirst,
        faults,
        ..ServeOptions::default()
    };
    let mut stats = ReplayStats::default();
    let mut latencies_ns = Vec::with_capacity(events.len());
    let digest = replay_stream_resilient(
        &mut service,
        geo,
        events,
        replay::DIGEST_SEED,
        &opts,
        &mut stats,
        |_, _, _, _, virtual_ns| latencies_ns.push(virtual_ns),
    );
    ArmResult { digest, stats, resilience: service.resilience_snapshot(), latencies_ns }
}

fn p99(latencies_ns: &[u64]) -> u64 {
    let mut sorted = latencies_ns.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() * 99) / 100 - 1]
}

fn outage_plan(n_events: u64) -> ServeFaultPlan {
    let plan = ServeFaultPlan::parse_spec("geo-down@200..400,slow-signal@history:25000", 0, n_events)
        .expect("plan parses");
    plan.validate(n_events).expect("plan is in range");
    plan
}

#[test]
fn serve_survives_geo_outage_plus_slow_signal() {
    let geo = GeoDb::new();
    let events = chaos_stream(&geo);
    let n = events.len() as u64;
    assert!(n > 10_000, "chaos needs a real stream, got {n} events");

    let clean = run_arm(&geo, &events, ServeFaultPlan::new());
    let faulted = run_arm(&geo, &events, outage_plan(n));

    // The whole stream completed: every event was scored or shed, and
    // the shed fraction is bounded and visible.
    assert_eq!(faulted.stats.events, n);
    assert_eq!(faulted.stats.scored + faulted.stats.shed, n, "no event was lost");
    assert!(faulted.stats.shed > 0, "a 25µs source against a 5µs deadline must shed");
    assert!(
        faulted.stats.shed_rate() < 0.05,
        "shedding must stay a transient, not the steady state: rate {}",
        faulted.stats.shed_rate()
    );

    // Degradation is per-source and accounted: the slow history source
    // trips its breaker and every post-trip verdict says so.
    assert!(faulted.stats.degraded_events > 0);
    assert!(faulted.stats.degraded_by_source[0] > 0, "history degraded");
    assert!(faulted.stats.degraded_by_source[2] > 0, "geo degraded during the outage");
    assert!(faulted.resilience.deadline_downgrades > 0, "the 25µs source blew its budget");

    // Breakers did their job: the history breaker opened (and re-opened
    // on failed probes); the geo breaker opened during the outage and
    // closed again once a probe found the source healthy.
    assert!(faulted.resilience.breakers.opened >= 2, "{:?}", faulted.resilience.breakers);
    assert!(faulted.resilience.breakers.half_opened >= 1);
    assert!(faulted.resilience.breakers.closed >= 1, "geo recovers after the outage window");

    // Latency holds: breakers bound the tail, so p99 virtual scoring
    // latency stays within 2× of the clean arm instead of collapsing
    // to the queue-saturated worst case.
    let p99_clean = p99(&clean.latencies_ns);
    let p99_faulted = p99(&faulted.latencies_ns);
    assert!(clean.stats.shed == 0 && clean.stats.degraded_events == 0);
    assert!(
        p99_faulted <= 2 * p99_clean,
        "p99 under faults ({p99_faulted} ns) exceeds 2× clean ({p99_clean} ns)"
    );
}

#[test]
fn same_seed_same_plan_reruns_are_byte_identical() {
    let geo = GeoDb::new();
    let events = chaos_stream(&geo);
    let n = events.len() as u64;
    let a = run_arm(&geo, &events, outage_plan(n));
    let b = run_arm(&geo, &events, outage_plan(n));
    assert_eq!(a.digest, b.digest, "verdict digests diverged across reruns");
    assert_eq!(a.stats, b.stats, "availability counters diverged across reruns");
    assert_eq!(a.resilience, b.resilience, "breaker accounting diverged across reruns");
    assert_eq!(a.latencies_ns, b.latencies_ns, "virtual latencies diverged across reruns");
}
