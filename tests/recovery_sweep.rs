//! Recovery-risk sweep contracts (ROADMAP item 4):
//!
//! 1. a forked sweep cell is byte-identical to running the same
//!    configuration from scratch (same seed, same divergence applied
//!    from day 0 for the baseline; fork-barrier divergence for the
//!    recovery cells is pinned against a barrier-applied scratch twin);
//! 2. the recovery-pivot adversary measurably shifts the frontier
//!    versus a no-pivot world with identical scoring;
//! 3. legitimate lockouts are monotone in deny-posture strictness
//!    (lenient → paper → strict) for a fixed world;
//! 4. the `sweep --validate` gate agrees with `repro --validate`: the
//!    baseline cell's world scores identically to the same world built
//!    the way the repro context builds it.

use mhw_bench::sweep::{fork_sweep, SweepCell};
use mhw_core::{
    DefenseConfig, RecoveryConfig, ScenarioBuilder, ScenarioConfig, ShardedEngine,
};
use mhw_experiments::fidelity::validate_world;
use mhw_experiments::Scale;
use mhw_recovery::{ClaimTrigger, RecoveryPosture, RecoveryVerdict};

fn config(seed: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::small_test(seed);
    config.days = 10;
    config.population.n_users = 300;
    config
}

fn engine(seed: u64) -> ShardedEngine {
    ShardedEngine::new(config(seed), 1).workers(1)
}

#[test]
fn forked_cells_reproduce_from_scratch_runs() {
    let snapshot = engine(0x5EED).snapshot_after(7).expect("snapshot");
    let cells = vec![
        SweepCell::baseline("full/legacy"),
        SweepCell::baseline("none/strict")
            .defense(DefenseConfig::none())
            .recovery(RecoveryConfig::strict()),
    ];
    let forked = fork_sweep(&snapshot, &cells, 1).expect("fork sweep");

    // The baseline cell applies no divergence, so it must equal the
    // uninterrupted from-scratch world byte for byte.
    let scratch = engine(0x5EED).run().expect("scratch baseline");
    assert_eq!(forked[0].digest, scratch.dataset_digest(), "baseline fork must be byte-identical");

    // A divergent cell reproduces a scratch run that applies the same
    // divergence at the same fork barrier: rebuild the prefix, fork it
    // by hand with the cell's configs, and compare digests.
    let twin_snapshot = engine(0x5EED).snapshot_after(7).expect("twin snapshot");
    let twin = twin_snapshot
        .fork()
        .workers(1)
        .defense(DefenseConfig::none())
        .recovery(RecoveryConfig::strict())
        .run()
        .expect("twin fork");
    assert_eq!(forked[1].digest, twin.dataset_digest(), "divergent cell must be reproducible");
    assert_ne!(forked[0].digest, forked[1].digest, "divergence must bite");
}

#[test]
fn recovery_pivot_shifts_the_frontier() {
    // Same scoring posture, pivot on vs off: the pivot arm must
    // actually file hijacker claims, and the two worlds must diverge.
    let no_pivot = RecoveryConfig { adversary_pivot: false, ..RecoveryConfig::paper() };
    let snapshot = engine(0x71B07).snapshot_after(5).expect("snapshot");
    let cells = vec![
        SweepCell::baseline("pivot").recovery(RecoveryConfig::paper()),
        SweepCell::baseline("no-pivot").recovery(no_pivot),
    ];
    let outcomes = fork_sweep(&snapshot, &cells, 1).expect("fork sweep");
    let (pivot, fortress) = (&outcomes[0], &outcomes[1]);
    assert!(pivot.pivot_attempts > 0, "pivot crews never reached the recovery flow");
    assert_eq!(fortress.pivot_attempts, 0, "no-pivot arm must not file hijacker claims");
    assert_eq!(fortress.pivot_takeovers, 0);
    assert_ne!(pivot.digest, fortress.digest, "the pivot must change the world");
}

#[test]
fn lockouts_are_monotone_in_posture_strictness() {
    // One scored world; its recorded per-claim risk scores are replayed
    // against each posture's deny threshold. The thresholds are nested
    // (strict 0.75 < paper 0.90 < lenient 0.97), so the deny sets must
    // be too — and the posture the world actually ran with must agree
    // with its own lockout counter.
    let mut config = config(0xBEEF);
    // No login defense: more hijacks, more owner reclaim claims. Pivot
    // off isolates the scores to owner claims.
    config.defense = DefenseConfig::none();
    config.recovery = RecoveryConfig { adversary_pivot: false, ..RecoveryConfig::strict() };
    let eco = ScenarioBuilder::new(config).run();

    let scores: Vec<f64> = eco
        .recovery
        .claims()
        .iter()
        .filter(|c| c.trigger != ClaimTrigger::HijackerPivot)
        .filter_map(|c| c.risk_score)
        .collect();
    assert!(scores.len() > 20, "world produced too few scored claims ({})", scores.len());

    let denied = |posture: RecoveryPosture| {
        scores.iter().filter(|&&s| posture.decide(s) == RecoveryVerdict::Deny).count() as u64
    };
    let (lenient, paper, strict) = (
        denied(RecoveryPosture::lenient()),
        denied(RecoveryPosture::paper()),
        denied(RecoveryPosture::strict()),
    );
    assert!(
        lenient <= paper && paper <= strict,
        "nested thresholds must deny nested claim sets: lenient {lenient} / paper {paper} / strict {strict}"
    );
    assert!(
        strict > lenient,
        "strict posture must lock out more owners than lenient ({strict} vs {lenient})"
    );
    assert_eq!(
        strict,
        eco.stats.recovery_lockouts,
        "the world ran at the strict posture; its counter must match the replayed denials"
    );
}

#[test]
fn sweep_validate_agrees_with_repro_validate() {
    // `sweep --validate` scores the baseline cell's world;
    // `repro --validate` scores the context's main world, which the
    // context builds as a plain single-world run of the same config.
    // Equal configs must produce identical world-derivable scorecards.
    let seed = 0xA9;
    let base = config(seed);

    // The sweep path: single-shard engine run of the baseline config.
    let run = ShardedEngine::new(base.clone(), 1).workers(1).run().expect("engine run");
    let sweep_world = &run.shards()[0];

    // The repro path: the plain unsharded builder, as the context uses.
    let repro_world = ScenarioBuilder::new(base).run();

    let a = validate_world(sweep_world, Scale::Quick, seed);
    let b = validate_world(&repro_world, Scale::Quick, seed);
    assert_eq!(a.to_json(), b.to_json(), "the two validate paths scored different worlds");
}
