//! The crash-safety contract: panic isolation, checkpoint/resume
//! determinism, corrupt-checkpoint rejection, and fault-schedule
//! reproducibility.
//!
//! The load-bearing test is
//! `resume_reproduces_the_uninterrupted_run_byte_for_byte`: a run
//! killed mid-flight and resumed from its last checkpoint must produce
//! the same dataset digest and the same serialized run report as a run
//! that never crashed — at any worker count.

use manual_hijacking_wild::core::checkpoint;
use manual_hijacking_wild::core::engine::{
    M_CHECKPOINTS_RESTORED, M_CHECKPOINTS_WRITTEN, M_CHECKPOINT_RETRIES, M_FAULTS_INJECTED,
    M_PANICS_CAUGHT,
};
use manual_hijacking_wild::prelude::*;
use manual_hijacking_wild::types::CheckpointOp;
use std::path::PathBuf;

/// The same small sharded scenario `tests/sharding.rs` pins its
/// determinism contract on: every cross-shard path is live (market,
/// spillover, engine-scheduled decoys), so crash-safety machinery has
/// real coupled state to preserve.
fn engine(seed: u64, shards: u16) -> ShardedEngine {
    let mut config = ScenarioConfig::small_test(seed);
    config.days = 6;
    config.population.n_users = 240;
    config.market_share = 0.3;
    ShardedEngine::new(config, shards)
        .contact_spillover(0.25)
        .decoys(6, 3)
}

/// A fresh scratch directory under the system temp dir (no extra
/// crates available, so no tempfile — a pid-and-tag-unique path is
/// enough for a single test process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhw-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn injected_panic_surfaces_as_a_typed_error() {
    let err = engine(0xBAD, 4)
        .workers(4)
        .fault_plan(FaultPlan::new().panic_at(2, 1))
        .run()
        .expect_err("shard 1 is scheduled to panic on day 2");
    match err {
        EngineError::ShardPanicked { shard, day, payload } => {
            assert_eq!(shard, 1);
            assert_eq!(day, 2);
            assert!(payload.contains("injected fault"), "payload was {payload:?}");
        }
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
    // The pool drained cleanly — no poisoned lock, no secondary panic —
    // so the very same process can run the same scenario to completion.
    let clean = engine(0xBAD, 4).workers(4).run().expect("clean rerun after caught panic");
    assert_eq!(clean.shards().len(), 4);
}

#[test]
fn salvage_keeps_partial_shards_and_a_degraded_report() {
    let failure = engine(0xBAD, 4)
        .workers(2)
        .fault_plan(FaultPlan::new().panic_at(3, 2))
        .run_salvage()
        .expect_err("shard 2 is scheduled to panic on day 3");
    assert!(matches!(
        failure.error,
        EngineError::ShardPanicked { shard: 2, day: 3, .. }
    ));
    // Every shard was built, so every shard survives for post-mortem —
    // including the panicked one, frozen at its last completed day —
    // and each carries three full days of logs.
    assert_eq!(failure.partial_shards.len(), 4);
    assert_eq!(failure.completed_days, 3);
    for eco in &failure.partial_shards {
        assert!(eco.login_log.records().len() > 0, "partial shard has no logs");
    }
    // The forensic report is explicitly degraded and names the cause.
    assert!(failure.report.degraded);
    let cause = failure.report.failure.as_deref().expect("failure cause recorded");
    assert!(cause.contains("shard 2"), "cause was {cause:?}");
    let json = failure.report.to_json();
    assert!(json.contains("\"degraded\":true") || json.contains("\"degraded\": true"));
}

#[test]
fn resume_reproduces_the_uninterrupted_run_byte_for_byte() {
    let dir = scratch("resume");
    let full = engine(0x5EED, 4).workers(1).run().expect("uninterrupted run");

    // Kill the run on day 4 (after checkpoints at completed days 2 and
    // 4), exactly the crash the checkpoint is for.
    let failure = engine(0x5EED, 4)
        .workers(1)
        .checkpoint_to(&dir, 2)
        .fault_plan(FaultPlan::new().panic_at(4, 0))
        .run_salvage()
        .expect_err("run is scheduled to die on day 4");
    assert_eq!(failure.completed_days, 4);

    let latest = checkpoint::latest_in_dir(&dir)
        .expect("list checkpoint dir")
        .expect("a checkpoint was written before the crash");
    assert!(latest.ends_with("ckpt-day00004.mhw"), "latest was {latest:?}");

    // Resume must converge to the uninterrupted run — digest and
    // serialized report byte-identical — and stay worker-invariant.
    for workers in [1, 4] {
        let resumed = engine(0x5EED, 4)
            .workers(workers)
            .resume_from(&latest)
            .run()
            .expect("resumed run");
        assert_eq!(
            resumed.dataset_digest(),
            full.dataset_digest(),
            "digest diverged after resume at {workers} workers"
        );
        assert_eq!(
            resumed.run_report().to_json(),
            full.run_report().to_json(),
            "run report diverged after resume at {workers} workers"
        );
        assert_eq!(resumed.ops_metrics().counter_value(M_CHECKPOINTS_RESTORED), Some(1));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_writes_and_ops_counters_are_observable() {
    let dir = scratch("counters");
    let run = engine(0xC0, 2)
        .workers(2)
        .checkpoint_to(&dir, 2)
        .run()
        .expect("checkpointed run");
    // 6 days, every 2 → checkpoints at completed 2 and 4 (the final
    // barrier is never checkpointed).
    assert_eq!(run.ops_metrics().counter_value(M_CHECKPOINTS_WRITTEN), Some(2));
    assert_eq!(run.ops_metrics().counter_value(M_PANICS_CAUGHT), Some(0));
    assert!(dir.join("ckpt-day00002.mhw").exists());
    assert!(dir.join("ckpt-day00004.mhw").exists());
    // The checkpoint phase shows up in the engine profile; the sim-time
    // metrics snapshot stays free of ops counters, so checkpointed and
    // plain runs serialize identical reports.
    let profile = run.profile();
    let phases: Vec<&str> = profile.phases.iter().map(|p| p.phase.as_str()).collect();
    assert!(phases.contains(&"checkpoint"), "phases were {phases:?}");
    let plain = engine(0xC0, 2).workers(2).run().expect("plain run");
    assert_eq!(run.run_report().to_json(), plain.run_report().to_json());
    assert_eq!(run.dataset_digest(), plain.dataset_digest());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_checkpoint_write_failures_are_retried() {
    let dir = scratch("retry");
    // Two injected failures sit below the three-attempt budget: the
    // run survives, and the retries are counted.
    let run = engine(0x77, 2)
        .workers(1)
        .checkpoint_to(&dir, 2)
        .fault_plan(FaultPlan::new().fail_checkpoint(1, 2))
        .run()
        .expect("retries absorb two transient failures");
    assert_eq!(run.ops_metrics().counter_value(M_CHECKPOINT_RETRIES), Some(2));
    assert_eq!(run.ops_metrics().counter_value(M_CHECKPOINTS_WRITTEN), Some(2));
    assert_eq!(run.ops_metrics().counter_value(M_FAULTS_INJECTED), Some(2));

    // Three failures exhaust the budget: the run aborts with the typed
    // I/O error instead of panicking or silently skipping the write.
    let dir2 = scratch("retry-exhaust");
    let err = engine(0x77, 2)
        .workers(1)
        .checkpoint_to(&dir2, 2)
        .fault_plan(FaultPlan::new().fail_checkpoint(1, 3))
        .run()
        .expect_err("three failures exhaust the retry budget");
    match err {
        EngineError::CheckpointIo { op, detail, .. } => {
            assert_eq!(op, CheckpointOp::Write);
            assert!(detail.contains("injected"), "detail was {detail:?}");
        }
        other => panic!("expected CheckpointIo, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn corrupt_truncated_and_mismatched_checkpoints_are_rejected() {
    let dir = scratch("reject");
    engine(0x11, 2)
        .workers(1)
        .checkpoint_to(&dir, 2)
        .run()
        .expect("checkpointed run");
    let path = dir.join("ckpt-day00002.mhw");
    let good = std::fs::read(&path).expect("read checkpoint file");

    // A single flipped byte in the body fails the checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let bad = dir.join("flipped.mhw");
    std::fs::write(&bad, &flipped).expect("write corrupted copy");
    let err = engine(0x11, 2).resume_from(&bad).run().expect_err("flipped byte");
    assert!(
        matches!(err, EngineError::CheckpointCorrupt { .. }),
        "expected CheckpointCorrupt, got {err:?}"
    );

    // A truncated file is rejected, not misparsed.
    let cut = dir.join("truncated.mhw");
    std::fs::write(&cut, &good[..good.len() / 2]).expect("write truncated copy");
    let err = engine(0x11, 2).resume_from(&cut).run().expect_err("truncated file");
    assert!(
        matches!(err, EngineError::CheckpointCorrupt { .. }),
        "expected CheckpointCorrupt, got {err:?}"
    );

    // Direct reads agree with the engine path.
    let err = Checkpoint::read(&bad).expect_err("direct read of corrupt file");
    assert!(matches!(err, EngineError::CheckpointCorrupt { .. }));

    // A structurally valid checkpoint from a *different* scenario is a
    // mismatch naming the disagreeing field, never a wrong dataset.
    let err = engine(0x12, 2).resume_from(&path).run().expect_err("wrong seed");
    match err {
        EngineError::CheckpointMismatch { field, .. } => assert_eq!(field, "seed"),
        other => panic!("expected CheckpointMismatch, got {other:?}"),
    }
    let err = engine(0x11, 4).resume_from(&path).run().expect_err("wrong shard count");
    assert!(matches!(err, EngineError::CheckpointMismatch { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_schedules_are_reproducible_and_round_trip() {
    // Same seed + same seeded spec → the same concrete schedule.
    let a = FaultPlan::parse_spec("seeded:panics=2,slow=3,ckpt=1", 0xFA17, 6, 4)
        .expect("seeded spec parses");
    let b = FaultPlan::parse_spec("seeded:panics=2,slow=3,ckpt=1", 0xFA17, 6, 4)
        .expect("seeded spec parses");
    assert_eq!(a, b);
    assert_eq!(a.panic_points(), b.panic_points());
    assert!(a.validate(6, 4).is_ok(), "seeded faults always land in range");

    // The canonical rendering of a resolved schedule re-parses to the
    // identical plan, so an echoed `--fault-plan` line is replayable.
    let reparsed = FaultPlan::parse_spec(&a.to_string(), 0, 6, 4).expect("display re-parses");
    assert_eq!(a, reparsed);

    // And the concrete run outcome is reproducible: the same explicit
    // panic point yields the same typed error twice.
    let spec = "panic@1.0";
    let fail = |seed| {
        let plan = FaultPlan::parse_spec(spec, seed, 6, 2).expect("explicit spec parses");
        engine(seed, 2).workers(2).fault_plan(plan).run().expect_err("scheduled panic")
    };
    assert_eq!(fail(0x99), fail(0x99));
}

#[test]
fn slow_worker_faults_never_change_the_dataset() {
    let base = engine(0x51, 3).workers(2).run().expect("baseline run");
    let slowed = engine(0x51, 3)
        .workers(2)
        .fault_plan(FaultPlan::new().slow_at(1, 0, 5).slow_at(2, 2, 5))
        .run()
        .expect("slowed run");
    assert_eq!(slowed.dataset_digest(), base.dataset_digest());
    assert_eq!(slowed.run_report().to_json(), base.run_report().to_json());
    assert_eq!(slowed.ops_metrics().counter_value(M_FAULTS_INJECTED), Some(2));
}

#[test]
fn zero_checkpoint_interval_is_an_invalid_config() {
    let dir = scratch("zero-interval");
    let err = engine(0x33, 2).checkpoint_to(&dir, 0).run().expect_err("interval 0");
    match err {
        EngineError::InvalidConfig { reason } => {
            assert!(reason.contains("interval"), "reason was {reason:?}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // Out-of-range fault plans are rejected before any thread spawns.
    let err = engine(0x33, 2)
        .fault_plan(FaultPlan::new().panic_at(99, 0))
        .run()
        .expect_err("day 99 of 6");
    assert!(matches!(err, EngineError::InvalidConfig { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}
