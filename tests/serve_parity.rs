//! Batch/serve parity: the streaming `RiskService` replayed over a
//! simulation's recorded login log must reproduce the batch pipeline's
//! verdicts bit for bit, and its state must stay bounded no matter how
//! many distinct IPs it sees.

use manual_hijacking_wild::core::replay::{self, ReplayLogin, WorkloadConfig};
use manual_hijacking_wild::defense::{
    RiskService, ServiceLimits, StreamingRiskService, DEFAULT_IP_CACHE_CAPACITY,
};
use manual_hijacking_wild::netmodel::GeoDb;
use manual_hijacking_wild::prelude::*;
use manual_hijacking_wild::types::{DeviceId, IpAddr, SimTime};

/// A fresh streaming service warmed up exactly the way
/// `Ecosystem::build` warms every user (same shared
/// `warm_up_standard`), ready to re-score the world's login log.
fn warmed_service(eco: &Ecosystem) -> StreamingRiskService {
    let mut svc = StreamingRiskService::new(RiskEngine::default());
    for u in &eco.population.users {
        let country = eco.geo.locate(u.home_ip).expect("home IP is in plan");
        svc.warm_up_standard(u.account, country, u.device);
    }
    svc
}

#[test]
fn streaming_replay_reproduces_batch_verdicts_bit_for_bit() {
    let eco = ScenarioBuilder::small_test(0x5E2E).days(10).run();
    let records: Vec<_> = eco.login_log.records().collect();
    assert!(records.len() > 1_000, "world produced a real login stream");

    let events = replay::from_login_log(&eco.login_log);
    let mut svc = warmed_service(&eco);
    let mut i = 0usize;
    let stream_digest =
        replay::replay_stream(&mut svc, &eco.geo, &events, replay::DIGEST_SEED, |_, v, out| {
            assert_eq!(
                v.score.to_bits(),
                records[i].risk_score.to_bits(),
                "score diverged at event {i} ({:?})",
                records[i]
            );
            assert_eq!(out, records[i].outcome, "outcome diverged at event {i}");
            assert!(v.fidelity.is_full(), "the healthy serve path never degrades (event {i})");
            i += 1;
        });
    assert_eq!(i, records.len(), "every recorded login was replayed");

    // The chained digest pins the same thing end to end: batch-side
    // (recorded scores + engine thresholds) equals streaming-side.
    let batch_digest = replay::verdict_digest_from_log(&eco.login_log, eco.login.engine());
    assert_eq!(stream_digest, batch_digest, "batch and serve verdict digests diverged");
}

#[test]
fn sharded_replay_covers_every_event_deterministically() {
    let geo = GeoDb::new();
    let events = replay::generate_workload(&WorkloadConfig::small(0xA11), &geo);
    let run = |threads: usize| -> (usize, u64) {
        let shards = replay::shard_events(&events, threads);
        let mut digests = Vec::new();
        let mut n = 0;
        for shard in &shards {
            let mut svc = StreamingRiskService::new(RiskEngine::default());
            digests.push(replay::replay_stream(
                &mut svc,
                &geo,
                shard,
                replay::DIGEST_SEED,
                |_, _, _| n += 1,
            ));
        }
        (n, replay::fold_digests(&digests))
    };
    let (n1, d1) = run(4);
    let (n2, d2) = run(4);
    assert_eq!(n1, events.len(), "sharding loses no events");
    assert_eq!((n1, d1), (n2, d2), "sharded replay is deterministic");
}

#[test]
fn bounded_state_stays_flat_under_a_million_distinct_ips() {
    let geo = GeoDb::new();
    let mut svc = StreamingRiskService::with_limits(
        RiskEngine::default(),
        ServiceLimits { ip_cache_capacity: DEFAULT_IP_CACHE_CAPACITY, accounts_per_ip: 64 },
    );
    let mut request = replay::placeholder_request();
    let accounts = 512u32;
    for i in 0..1_000_000u32 {
        let event = ReplayLogin {
            at: SimTime::from_secs(i as u64),
            account: AccountId(i % accounts),
            ip: IpAddr(i.wrapping_mul(2_654_435_761)), // distinct for all i
            device: DeviceId(i % accounts),
            password_correct: true,
            challenge_pass: true,
            outcome: None,
        };
        replay::score_event(&mut svc, &geo, &event, &mut request);
    }
    let size = svc.state_size();
    assert!(
        size.ip_entries <= DEFAULT_IP_CACHE_CAPACITY,
        "IP cache exceeded its LRU bound: {} entries",
        size.ip_entries
    );
    assert!(
        size.accounts as u32 <= accounts,
        "history exists only for seen accounts: {} > {accounts}",
        size.accounts
    );
    assert!(
        size.approx_bytes < 32 << 20,
        "bounded state grew with the stream: {} bytes",
        size.approx_bytes
    );
}
