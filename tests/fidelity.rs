//! The fidelity harness's own contract tests:
//!
//! 1. `FIDELITY.json` is byte-identical across worker counts — the
//!    scorecard inherits the engine's determinism guarantee.
//! 2. A deliberately miscalibrated measurement set must FAIL — the
//!    checker actually checks.
//! 3. Tolerance-band edge cases classify the way the registry
//!    documents (boundaries stay in the better class).

use manual_hijacking_wild::experiments::fidelity::{self, registry};
use manual_hijacking_wild::experiments::{Context, Scale};
use manual_hijacking_wild::obs::{FidelityReport, FidelityStatus, TargetScore, Tolerance};

const SEED: u64 = 0x1914_2014;

#[test]
fn scorecard_is_byte_identical_across_worker_counts() {
    let one = Context::with_workers(Scale::Quick, SEED, 1);
    let four = Context::with_workers(Scale::Quick, SEED, 4);
    let r1 = fidelity::validate(&one);
    let r4 = fidelity::validate(&four);
    assert_eq!(r1.to_json(), r4.to_json(), "worker count leaked into FIDELITY.json");
    assert_eq!(
        r1.scorecard_markdown(),
        r4.scorecard_markdown(),
        "worker count leaked into the rendered scorecard"
    );
}

#[test]
fn default_quick_scenario_has_no_failures_and_full_coverage() {
    let ctx = Context::new(Scale::Quick, SEED);
    let report = fidelity::validate(&ctx);
    assert_ne!(
        report.overall(),
        FidelityStatus::Fail,
        "default seed FAILs: {:?}",
        report.failures().iter().map(|f| &f.component).collect::<Vec<_>>()
    );
    // Every registry target is scored, and nothing else is.
    let scored = report.target_ids();
    for t in registry() {
        assert!(scored.contains(&t.id), "target {} missing from scorecard", t.id);
    }
    assert_eq!(scored.len(), registry().len());
    // Round-trips through JSON unchanged.
    let json = report.to_json();
    let back = FidelityReport::from_json(&json).expect("valid JSON");
    assert_eq!(back.to_json(), json);
}

#[test]
fn miscalibrated_measurements_fail() {
    let ctx = Context::new(Scale::Quick, SEED);
    let mut m = fidelity::collect(&ctx);

    // Sabotage three different metric families.
    m.fig5.rates = vec![0.95; 8]; // mean conversion ≈95% vs paper 13.7%
    m.fig9.latencies_hours = vec![500.0; 50]; // nothing recovers in 13 h
    m.fig12.countries = {
        let mut b = manual_hijacking_wild::analysis::Breakdown::new();
        b.add_n("CN".to_string(), 30); // the tactic's non-adopters, dominant
        b
    };

    let report = fidelity::score(&m, Scale::Quick, SEED);
    assert_eq!(report.overall(), FidelityStatus::Fail);
    for target in ["F5", "F9", "F12"] {
        assert_eq!(
            report.status_of(target),
            Some(FidelityStatus::Fail),
            "{target} should FAIL after sabotage"
        );
    }
    // Untouched targets keep their verdicts — sabotage is local.
    assert_ne!(report.status_of("F3"), Some(FidelityStatus::Fail));
    assert_ne!(report.status_of("T1"), Some(FidelityStatus::Fail));
}

#[test]
fn world_derivable_subset_scores_from_a_single_world() {
    let ctx = Context::new(Scale::Quick, SEED);
    let report = fidelity::validate_world(&ctx.eco_2012, Scale::Quick, SEED);
    let ids = report.target_ids();
    for expected in ["T3", "F8", "F9", "F10", "F11", "SEC5"] {
        assert!(ids.contains(&expected), "partial scorecard missing {expected}");
    }
    // Targets needing companion runs are absent.
    for absent in ["T2", "F5", "F7", "F12"] {
        assert!(!ids.contains(&absent), "{absent} cannot be world-derived");
    }
    // The partial report agrees with the full pipeline on shared
    // targets: same worlds, same measurements, same verdicts.
    let full = fidelity::validate(&ctx);
    for id in &ids {
        assert_eq!(report.status_of(id), full.status_of(id), "divergent verdict for {id}");
    }
}

#[test]
fn tolerance_edges_classify_into_the_better_class() {
    let t = Tolerance::new(0.10, 0.25);
    assert_eq!(t.classify(0.0), FidelityStatus::Pass);
    assert_eq!(t.classify(0.10), FidelityStatus::Pass, "warn boundary is a PASS");
    assert_eq!(t.classify(0.25), FidelityStatus::Warn, "fail boundary is a WARN");
    assert_eq!(t.classify(0.2500001), FidelityStatus::Fail);
    assert_eq!(t.classify(f64::INFINITY), FidelityStatus::Fail);

    // Degenerate zero-width band: only an exact hit passes.
    let exact = Tolerance::new(0.0, 0.0);
    assert_eq!(exact.classify(0.0), FidelityStatus::Pass);
    assert_eq!(exact.classify(f64::MIN_POSITIVE), FidelityStatus::Fail);

    // Scores carry the band through construction.
    let s = TargetScore::new("X", "c", "rel_err", "1", "2", 0.25, t, "");
    assert_eq!(s.status, FidelityStatus::Warn);
}

#[test]
fn registry_is_documented_in_the_figure_atlas() {
    let atlas = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FIGURES.md"))
        .expect("docs/FIGURES.md exists");
    for t in registry() {
        assert!(
            atlas.contains(&format!("`{}`", t.id)),
            "docs/FIGURES.md has no section for target {}",
            t.id
        );
    }
}
