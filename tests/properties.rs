//! Property-based tests over core data structures and invariants.

use manual_hijacking_wild::analysis::{Breakdown, Ecdf};
use manual_hijacking_wild::defense::{ActivityFeatures, ActivityMonitor, RiskEngine};
use manual_hijacking_wild::identity::is_trivial_variant;
use manual_hijacking_wild::mailsys::{Folder, Mailbox, Message, MessageKind, SearchQuery};
use manual_hijacking_wild::simclock::{EventQueue, SimRng};
use manual_hijacking_wild::types::{
    AccountId, EmailAddress, IpAddr, IpBlock, MessageId, SimTime,
};
use proptest::prelude::*;

fn arb_message(id: u32, subject: String, body: String, starred: bool) -> Message {
    Message {
        id: MessageId(id),
        owner: AccountId(0),
        from: EmailAddress::new("from", "x.com"),
        to: vec![],
        subject,
        body,
        attachments: vec![],
        kind: MessageKind::Personal,
        reply_to: None,
        at: SimTime::from_secs(id as u64),
        read: false,
        starred,
    }
}

proptest! {
    /// Event queues always pop in non-decreasing time order, regardless
    /// of insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(*t), i);
        }
        let mut last = SimTime::from_secs(0);
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// ECDF is monotone and bounded in [0, 1].
    #[test]
    fn ecdf_is_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(xs.clone());
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in &xs {
            let f = e.fraction_at_or_below(*x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert!((e.fraction_at_or_below(f64::MAX) - 1.0).abs() < 1e-12);
    }

    /// ECDF quantiles are order-consistent.
    #[test]
    fn ecdf_quantiles_monotone(xs in proptest::collection::vec(-1e5f64..1e5, 1..100),
                               q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let e = Ecdf::new(xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(e.quantile(lo) <= e.quantile(hi));
    }

    /// Breakdown fractions always sum to 1 (non-empty) and rows sort
    /// descending.
    #[test]
    fn breakdown_fractions_sum_to_one(labels in proptest::collection::vec(0u8..10, 1..200)) {
        let mut b = Breakdown::new();
        for l in &labels {
            b.add(format!("label{l}"));
        }
        let rows = b.rows();
        let total: f64 = rows.iter().map(|(_, _, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for w in rows.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    /// Mailbox: purge + restore round-trips the full message set, and
    /// search results are always a subset of live messages.
    #[test]
    fn mailbox_purge_restore_roundtrip(n in 1usize..40, needle in "[a-z]{1,6}") {
        let mut mb = Mailbox::new();
        for i in 0..n {
            let subject = if i % 3 == 0 { format!("about {needle}") } else { format!("note {i}") };
            mb.store(arb_message(i as u32, subject, "body".into(), i % 5 == 0), Folder::Inbox);
        }
        let hits = manual_hijacking_wild::mailsys::search::search(&mb, &SearchQuery::parse(&needle));
        for h in &hits {
            prop_assert!(mb.get(*h).is_some());
        }
        // Hijack-style mass purge then remission restore.
        let ids: Vec<MessageId> = mb.all_messages().map(|m| m.id).collect();
        for id in &ids {
            mb.purge(*id, SimTime::from_secs(1000));
        }
        prop_assert!(mb.is_empty());
        let restored = mb.restore_purged_since(SimTime::from_secs(500));
        prop_assert_eq!(restored, n);
        prop_assert_eq!(mb.len(), n);
    }

    /// The trivial-variant relation is symmetric.
    #[test]
    fn trivial_variant_symmetry(a in "[a-zA-Z0-9]{1,12}", b in "[a-zA-Z0-9]{1,12}") {
        prop_assert_eq!(is_trivial_variant(&a, &b), is_trivial_variant(&b, &a));
    }

    /// Risk scores are in [0, 1) and monotone in the fan-out signal.
    #[test]
    fn risk_score_bounded_and_monotone(fanout1 in 0.0f64..1.0, fanout2 in 0.0f64..1.0) {
        use manual_hijacking_wild::defense::LoginSignals;
        let engine = RiskEngine::default();
        let mk = |f: f64| LoginSignals { ip_fanout: f, new_country: 1.0, ..Default::default() };
        let (lo, hi) = if fanout1 <= fanout2 { (fanout1, fanout2) } else { (fanout2, fanout1) };
        let s_lo = engine.score(&mk(lo));
        let s_hi = engine.score(&mk(hi));
        prop_assert!((0.0..1.0).contains(&s_lo));
        prop_assert!(s_hi >= s_lo);
    }

    /// Activity scores are bounded and monotone in every feature count.
    #[test]
    fn activity_score_bounded_monotone(h in 0u32..20, s in 0u32..10, c in 0u32..5, p in 0u32..40) {
        let f = ActivityFeatures {
            hunting_searches: h,
            other_searches: 0,
            special_folders_opened: s,
            contact_views: c,
            settings_changes: 0,
            messages_sent: 0,
            max_recipients: 0,
            purges: p,
        };
        let score = ActivityMonitor::score(&f);
        prop_assert!((0.0..1.0).contains(&score));
        let mut bigger = f.clone();
        bigger.hunting_searches += 1;
        prop_assert!(ActivityMonitor::score(&bigger) >= score);
    }

    /// IP blocks contain exactly the addresses they enumerate.
    #[test]
    fn ip_block_membership(a in 0u8..255, b in 0u8..255, prefix in 8u8..31, i in 0u64..10_000) {
        let block = IpBlock::new(IpAddr::new(a, b, 0, 0), prefix);
        let addr = block.addr(i);
        prop_assert!(block.contains(addr));
    }

    /// Email parsing round-trips through Display.
    #[test]
    fn email_parse_display_roundtrip(local in "[a-z][a-z0-9.]{0,10}", domain in "[a-z]{1,8}\\.[a-z]{2,4}") {
        let addr = EmailAddress::new(local.clone(), domain.clone());
        let parsed = EmailAddress::parse(&addr.to_string()).unwrap();
        prop_assert_eq!(parsed, addr);
    }

    /// Weighted sampling never returns an index with zero weight.
    #[test]
    fn weighted_index_respects_zeros(weights in proptest::collection::vec(0.0f64..10.0, 1..20), seed in 0u64..1000) {
        let mut rng = SimRng::from_seed(seed);
        if let Some(i) = rng.weighted_index(&weights) {
            prop_assert!(weights[i] > 0.0);
        } else {
            prop_assert!(weights.iter().all(|w| *w <= 0.0));
        }
    }
}
