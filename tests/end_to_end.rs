//! End-to-end integration tests over the full ecosystem.

use manual_hijacking_wild::prelude::*;
use manual_hijacking_wild::types::{Actor, DAY};

fn world(seed: u64, days: u64) -> Ecosystem {
    ScenarioBuilder::small_test(seed).days(days).run()
}

#[test]
fn full_lifecycle_produces_every_paper_artifact() {
    let eco = world(0xE2E, 14);
    // Attack vectors: lures delivered, credentials captured.
    assert!(eco.stats.lures_delivered > 1000);
    assert!(eco.stats.credentials_captured > 20);
    // Exploitation: sessions with searches, folders, messages.
    assert!(eco.sessions().iter().any(|s| !s.searches.is_empty()));
    assert!(eco.sessions().iter().any(|s| s.messages_sent > 0));
    // Remediation: claims and recoveries.
    assert!(!eco.recovery.claims().is_empty());
    assert!(eco.stats.recovered > 0);
    // Attribution: hijacker logins geolocate to modelled countries.
    let located = eco
        .login_log
        .records()
        .filter(|r| matches!(r.actor, Actor::Hijacker(_)))
        .filter(|r| eco.geo.locate(r.ip).is_some())
        .count();
    assert!(located > 0);
}

#[test]
fn incident_timelines_are_causally_ordered() {
    let eco = world(0xCAFE, 14);
    for inc in eco.incidents() {
        let session = &eco.sessions()[inc.session];
        assert!(session.started_at <= inc.hijack_start);
        assert!(session.ended_at >= inc.hijack_start);
        if let Some(flagged) = inc.flagged_at {
            assert!(flagged >= inc.hijack_start, "flagged before hijack");
            if let Some(rec) = inc.recovered_at {
                assert!(rec >= flagged, "recovered before flagged");
            }
        }
        if let Some(rec) = inc.recovered_at {
            assert!(inc.remission.is_some(), "recovery without remission");
            assert!(rec.since(inc.hijack_start).as_secs() < eco.config.days * DAY + DAY);
        }
    }
}

#[test]
fn hijack_sessions_only_touch_resolvable_accounts() {
    let eco = world(0x5E55, 10);
    for s in eco.sessions() {
        if let Some(a) = s.account {
            assert!(
                a.index() < eco.population.len() || eco.decoy_accounts.contains(&a),
                "session on unknown account {a}"
            );
        }
    }
}

#[test]
fn crews_never_exceed_the_per_ip_account_cap() {
    let eco = world(0x1B5, 14);
    use std::collections::{HashMap, HashSet};
    let mut per_ip_day: HashMap<(manual_hijacking_wild::types::IpAddr, u64), HashSet<AccountId>> =
        HashMap::new();
    for r in eco.login_log.records() {
        if matches!(r.actor, Actor::Hijacker(_)) {
            per_ip_day
                .entry((r.ip, r.at.day_index()))
                .or_default()
                .insert(r.account);
        }
    }
    for ((ip, day), accounts) in per_ip_day {
        assert!(
            accounts.len() <= 11,
            "{ip} touched {} accounts on day {day}",
            accounts.len()
        );
    }
}

#[test]
fn era_2011_and_2012_behave_differently() {
    let eco11 = ScenarioBuilder::small_test(0xE7A).days(14).era(Era::Y2011).run();
    let eco12 = world(0xE7A, 14);
    let deletions = |eco: &Ecosystem| {
        eco.sessions()
            .iter()
            .filter(|s| s.retention.mass_deleted)
            .count()
    };
    // 2011 crews mass-delete; 2012 crews essentially never do.
    assert!(deletions(&eco11) >= deletions(&eco12));
}

#[test]
fn undefended_world_is_strictly_worse_for_users() {
    let undefended = ScenarioBuilder::small_test(0xDEF)
        .days(12)
        .defense(DefenseConfig::none())
        .run();
    let defended = world(0xDEF, 12);
    // Same attack pressure; defenses reduce successful hijack sessions
    // relative to attempts.
    let rate = |eco: &Ecosystem| {
        eco.stats.incidents as f64 / eco.stats.sessions_run.max(1) as f64
    };
    assert!(
        rate(&undefended) > rate(&defended),
        "undefended {:.2} vs defended {:.2}",
        rate(&undefended),
        rate(&defended)
    );
}

#[test]
fn recovered_mailboxes_get_their_content_back() {
    let eco = ScenarioBuilder::small_test(0x3E57)
        .days(16)
        .lures_per_user_day(2.0)
        .run();
    let mass_deleted_and_recovered: Vec<_> = eco
        .incidents()
        .iter()
        .filter(|i| {
            eco.sessions()[i.session].retention.mass_deleted && i.recovered_at.is_some()
        })
        .collect();
    for inc in &mass_deleted_and_recovered {
        let rem = inc.remission.unwrap();
        assert!(
            rem.messages_restored > 0,
            "mass-deleted mailbox restored nothing"
        );
        assert!(!eco.provider.mailbox(inc.account).is_empty());
    }
}

#[test]
fn decoy_experiment_is_reproducible_and_consistent() {
    let config = ScenarioBuilder::small_test(0xDEAD).days(10).into_config();
    let (eco, report) = run_decoy_experiment(config, 30, 4);
    for o in &report.outcomes {
        if let Some(t) = o.first_attempt {
            assert!(t >= o.submitted_at);
            // The touch really is in the login log with a hijacker actor.
            assert!(eco
                .login_log
                .for_account(o.account)
                .any(|r| r.at == t && r.actor.is_hijacker()));
        }
    }
}
