//! Run the entire experiment battery at quick scale and check that the
//! headline *shapes* hold. Absolute tolerances live inside each
//! experiment; here we assert the structural claims that must never
//! regress regardless of sampling noise.

use manual_hijacking_wild::experiments::{all_experiments, Context, Scale};

#[test]
fn quick_battery_runs_and_mostly_matches() {
    let ctx = Context::new(Scale::Quick, 0xBEEF);
    let mut matched = 0usize;
    let mut total = 0usize;
    let mut failures = Vec::new();
    for (name, runner) in all_experiments() {
        let result = runner(&ctx);
        assert!(
            !result.table.rows.is_empty(),
            "{name} produced no comparison rows"
        );
        for row in &result.table.rows {
            total += 1;
            if row.matches {
                matched += 1;
            } else {
                failures.push(format!("{name}: {}", row.metric));
            }
        }
    }
    // Quick scale is noisy; demand at least 80% of rows in tolerance and
    // print the misses for debugging.
    let rate = matched as f64 / total as f64;
    assert!(
        rate >= 0.80,
        "only {matched}/{total} rows matched; misses:\n{}",
        failures.join("\n")
    );
}

#[test]
fn decoy_cdf_shape_holds() {
    use manual_hijacking_wild::types::SimDuration;
    let ctx = Context::new(Scale::Quick, 0xF16);
    let r = &ctx.decoys;
    let fast = r.fraction_accessed_within(SimDuration::from_mins(30));
    let day = r.fraction_accessed_within(SimDuration::from_hours(24));
    assert!(day >= fast);
    assert!(day > 0.25, "within 24h {day}");
}

#[test]
fn attribution_shapes_hold() {
    use manual_hijacking_wild::core::datasets::{hijacker_logins, hijacker_phones};
    let ctx = Context::new(Scale::Quick, 0xA77);
    // Phones only ever come from the crews that used the tactic.
    for p in hijacker_phones(&ctx.eco_lockout) {
        let c = p.country().unwrap();
        assert!(
            matches!(
                c.code(),
                "NG" | "CI" | "ZA" | "ML"
            ),
            "unexpected phone country {c}"
        );
    }
    // Hijacker login IPs geolocate inside the modelled plan.
    for r in hijacker_logins(&ctx.eco_2012) {
        assert!(ctx.eco_2012.geo.locate(r.ip).is_some());
    }
}
