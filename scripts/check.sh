#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and a
# warning-free clippy pass. Run from anywhere inside the repo.
#
# The build environment is fully offline (external deps are vendored
# stand-ins under vendor/), so every cargo invocation passes --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --offline --release --workspace

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

echo "== cargo test --doc =="
cargo test --offline --workspace --doc -q

echo "all checks passed"
