#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and a
# warning-free clippy pass. Run from anywhere inside the repo.
#
# The build environment is fully offline (external deps are vendored
# stand-ins under vendor/), so every cargo invocation passes --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --offline --release --workspace

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo doc =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

echo "== cargo test --doc =="
cargo test --offline --workspace --doc -q

echo "== chaos =="
# Crash-safety gate, explicitly: panic isolation, checkpoint/resume
# byte-identity, corrupt-checkpoint rejection, fault reproducibility.
# (Also runs as part of the workspace suite above; kept as its own
# step so a crash-safety regression is named at the gate.)
cargo test --offline -q --test chaos

echo "== fidelity =="
# Paper-fidelity gate: score the quick-scale worlds against the
# calibration-target registry (docs/FIGURES.md). `--validate` exits 1
# if any of the 14 targets FAILs its tolerance band; WARNs are
# small-sample drift and do not fail the gate.
fidelity_tmp=$(mktemp -d)
trap 'rm -rf "$fidelity_tmp"' EXIT
cargo run --offline --release -p mhw-experiments --bin repro -- \
    --quick --validate \
    --fidelity-out "$fidelity_tmp/FIDELITY.json" \
    --scorecard "$fidelity_tmp/FIDELITY.md"

echo "== docs links =="
# Every intra-repo markdown link (and anchor) must resolve.
scripts/check_links.sh

echo "== serve-smoke =="
# Serve-mode gate: generate the small workload, replay it through
# per-thread RiskService instances on 1 and 2 threads, and verify the
# written BENCH_serve.json parses with nonzero throughput. Usage
# errors exit 2, runtime failures exit 1 (shared cli contract).
cargo run --offline --release -p mhw-experiments --bin serve -- \
    --smoke --out "$fidelity_tmp/BENCH_serve.json"

echo "== serve-chaos =="
# Overload gate: the same smoke workload with a seeded fault plan (one
# geo outage window, two deadline-busting slow signals) through the
# resilient path — zero panics, every event scored or shed, shed rate
# bounded (≤ 0.5), and each fault arm replayed twice to assert a
# byte-identical verdict digest.
cargo run --offline --release -p mhw-experiments --bin serve -- \
    --smoke --fault-plan seeded:geo=1,slow=2 --queue-cap 8 \
    --out "$fidelity_tmp/BENCH_serve_chaos.json"

echo "== sweep-smoke =="
# Posture-sweep gate: a tiny defense × recovery grid forked twice off
# freshly built snapshots — the run errors unless both passes produce
# identical per-cell digests and the written BENCH_sweep.json re-reads
# with the same fingerprint. Does not rewrite the committed
# BENCH_sweep.json — that comes from a full `sweep` run (docs/SWEEPS.md).
cargo run --offline --release -p mhw-experiments --bin sweep -- \
    --smoke --out "$fidelity_tmp/BENCH_sweep.json"

echo "== bench-smoke =="
# Scaling smoke: profile the engine at 1/2/4/8 workers on a small
# scenario and write BENCH_scaling.json. The bench itself prints a
# non-fatal warning if a multi-worker shard_day exceeds the 1-worker
# baseline (CI timing is noisy, so this never fails the gate).
cargo bench --offline -p mhw-bench --bench engine_scaling -- --smoke

echo "== bench-scale =="
# Scale-ladder smoke: one miniature rung through the ladder's
# child-process machinery (VmHWM sampling, row parsing, and the fatal
# cross-worker digest assertion). Does not rewrite BENCH_scale.json —
# the committed ladder comes from a full `cargo bench --bench
# scale_ladder` run (see docs/SCALING.md).
cargo bench --offline -p mhw-bench --bench scale_ladder -- --smoke

echo "== bench-fork =="
# Fork-sweep smoke: a miniature 4-cell grid through both sweep arms —
# fork continuations off a shared prefix vs build each cell from
# scratch — including the fatal baseline-digest cross-check (a fork
# must never change semantics). Does not rewrite BENCH_fork.json —
# the committed artifact comes from a full `cargo bench --bench
# fork_sweep` run (see docs/REPRODUCING.md).
cargo bench --offline -p mhw-bench --bench fork_sweep -- --smoke

echo "all checks passed"
