#!/usr/bin/env bash
# Docs gate: every intra-repo markdown link must resolve to a file
# that exists. External links (scheme://) are skipped; anchors are
# stripped before the existence check; pure-anchor links (#section)
# are checked against the headings of the containing file.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# GitHub-style anchor slug: lowercase, drop everything but word
# characters / spaces / hyphens, spaces become hyphens.
slug() {
    printf '%s' "$1" | tr '[:upper:]' '[:lower:]' \
        | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

has_anchor() { # file anchor
    local file="$1" anchor="$2" line
    while IFS= read -r line; do
        line="${line###}"; line="${line## }"
        if [ "$(slug "$line")" = "$anchor" ]; then
            return 0
        fi
    done < <(grep -E '^#{1,6} ' "$file" | sed -E 's/^#{1,6} //')
    return 1
}

while IFS= read -r md; do
    dir=$(dirname "$md")
    # Extract inline link targets: ](target)
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            *://*|mailto:*) continue ;;       # external
        esac
        anchor=""
        case "$target" in
            \#*) # same-file anchor
                anchor="${target#\#}"
                if ! has_anchor "$md" "$anchor"; then
                    echo "BROKEN ANCHOR  $md -> $target"
                    fail=1
                fi
                continue ;;
            *\#*)
                anchor="${target#*\#}"
                target="${target%%\#*}" ;;
        esac
        path="$dir/$target"
        if [ ! -e "$path" ]; then
            echo "BROKEN LINK    $md -> $target"
            fail=1
        elif [ -n "$anchor" ] && [ -f "$path" ] && ! has_anchor "$path" "$anchor"; then
            echo "BROKEN ANCHOR  $md -> $target#$anchor"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//' -e 's/ ".*"$//')
done < <(find . -name '*.md' -not -path './target/*' -not -path './vendor/*' -not -path './.git/*')

if [ "$fail" -ne 0 ]; then
    echo "docs link check FAILED"
    exit 1
fi
echo "docs link check passed"
