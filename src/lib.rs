//! # manual-hijacking-wild
//!
//! A full reproduction of *"Handcrafted Fraud and Extortion: Manual
//! Account Hijacking in the Wild"* (Bursztein et al., IMC 2014) as a
//! closed, deterministic simulation ecosystem in Rust.
//!
//! The paper is a measurement study over Google's proprietary logs; this
//! workspace rebuilds the *system that produced those measurements*:
//!
//! * a simulated mail provider with search, folders, filters and
//!   contacts ([`mhw_mailsys`]);
//! * an authentication stack with credentials, recovery options, 2FA
//!   and a full login log ([`mhw_identity`]);
//! * a synthetic user population on a clustered contact graph
//!   ([`mhw_population`]);
//! * phishing infrastructure — lures, pages, dropboxes, takedowns
//!   ([`mhw_phishkit`]);
//! * manual-hijacking crews that keep office hours and follow the §5
//!   playbook ([`mhw_adversary`]);
//! * the defender: login risk analysis, login challenges, behavioral
//!   detection, a scam classifier and notifications ([`mhw_defense`]);
//! * account recovery and remission ([`mhw_recovery`]);
//! * the orchestrating [`Ecosystem`](mhw_core::Ecosystem) and the
//!   measurement pipeline ([`mhw_core`], [`mhw_analysis`]);
//! * one experiment per table/figure of the paper
//!   ([`mhw_experiments`]).
//!
//! ## Quick start
//!
//! ```
//! use manual_hijacking_wild::prelude::*;
//!
//! // Build a small world, run a few simulated days, inspect incidents.
//! let eco = ScenarioBuilder::small_test(42).days(3).run();
//! assert!(eco.stats.organic_logins > 0);
//! for incident in eco.real_incidents().take(3) {
//!     println!("{} hijacked at {}", incident.account, incident.hijack_start);
//! }
//! ```
//!
//! For multi-core runs, [`ShardedEngine`](mhw_core::ShardedEngine)
//! partitions the population over logical shards and merges their logs
//! into one globally ordered event stream; see `tests/sharding.rs`.
//!
//! Regenerate the paper's evaluation with
//! `cargo run -p mhw-experiments --bin repro --release`.

pub use mhw_adversary as adversary;
pub use mhw_analysis as analysis;
pub use mhw_core as core;
pub use mhw_defense as defense;
pub use mhw_experiments as experiments;
pub use mhw_identity as identity;
pub use mhw_mailsys as mailsys;
pub use mhw_netmodel as netmodel;
pub use mhw_obs as obs;
pub use mhw_phishkit as phishkit;
pub use mhw_population as population;
pub use mhw_recovery as recovery;
pub use mhw_simclock as simclock;
pub use mhw_types as types;

/// The names most programs need.
pub mod prelude {
    pub use mhw_adversary::{CrewSpec, Era, HijackPlaybook};
    pub use mhw_core::{
        run_decoy_experiment, run_form_campaigns, Checkpoint, CheckpointPolicy, DefenseConfig,
        Ecosystem, EngineError, EngineResult, FaultPlan, Incident, RunFailure, ScenarioBuilder,
        ScenarioConfig, ShardedEngine, ShardedRun,
    };
    pub use mhw_defense::{RiskDecision, RiskEngine, RiskWeights};
    pub use mhw_obs::{MetricsSnapshot, Registry, RunReport};
    pub use mhw_simclock::SimRng;
    pub use mhw_types::{AccountId, Actor, CountryCode, SimDuration, SimTime};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_builds_a_world() {
        let eco = ScenarioBuilder::small_test(1).days(2).build();
        assert!(!eco.population.is_empty());
    }
}
